//! Malleability under overload: cluster throughput and batch-job turnaround
//! with and without autonomic grow/shrink of an MPI application.
//!
//! One hub (registry) plus [`WORKERS`] workstations. A malleable
//! `test_tree` world starts at k = 2 on ws1/ws2; two waves of fixed-size
//! batch jobs arrive later (wave 1 on ws5/ws6, wave 2 everywhere). With
//! resize rules installed the registry grows the world onto idle
//! workstations while the cluster is mostly free (`freeFrac ≥ 0.5` →
//! `expand:`), and gives capacity back when a meaningful share of it is
//! overloaded (`overLdFrac ≥ 0.3` → `shrink:`) — the same command channel,
//! ACK/retransmit bookkeeping and transaction engine migration uses. The
//! fixed-size arm runs the identical workload with no rules installed.
//!
//! Two gates accompany the measurement (driven by `bench_malleable`):
//!
//! * **determinism** — the fixed-size arm replayed with the same seed must
//!   produce a bit-identical trace;
//! * **inert-config byte-identity** — the fixed-size arm with a malleable
//!   job *configured but whose rules can never fire* must produce a trace
//!   byte-identical to the arm with no job configured at all: the
//!   reconfiguration engine's presence on the heartbeat path is not allowed
//!   to perturb fixed-size scenarios.
//!
//! The batch jobs are deliberately *not* migratable: overloaded hosts then
//! carry nothing the migration path could select, so the cells isolate the
//! malleability machinery (the migration machinery is benchmarked
//! elsewhere).

use ars_apps::{DaemonNoise, MalleableTree, MalleableTreeConfig};
use ars_hpcm::{HpcmConfig, HpcmHooks, HpcmShell, MigratableApp, MigrationOutcome, ResizeKind};
use ars_mpisim::Mpi;
use ars_rescheduler::{deploy, DeployConfig, MalleableJob};
use ars_rules::{ResizeAction, ResizeMetric, ResizeRule, RuleOp};
use ars_sim::{Ctx, HostId, Pid, Program, Sim, SimConfig, SpawnOpts, Wake};
use ars_simcore::{SimDuration, SimTime};
use ars_simhost::HostConfig;
use std::any::Any;

/// Monitored workstations (ws1..=ws6); the hub hosts only the registry.
pub const WORKERS: usize = 6;
/// Initial world size of the malleable application.
pub const APP_RANKS: u32 = 2;
/// Wave 1: heavy batch jobs on ws5/ws6 (hosts the app never expands onto).
pub const WAVE1_S: u64 = 300;
const WAVE1_JOBS_PER_HOST: usize = 3;
const WAVE1_JOB_CPU_S: f64 = 150.0;
/// Wave 2: moderate batch jobs on every workstation. Late enough after
/// wave 1 drains (~830 s) for the 1-minute load averages to decay below
/// the free cut, so the registry sees the idle capacity and re-expands.
pub const WAVE2_S: u64 = 1_050;
const WAVE2_JOBS_PER_HOST: usize = 2;
const WAVE2_JOB_CPU_S: f64 = 150.0;
/// Observation window; everything must complete well inside it.
pub const HORIZON_S: u64 = 3_600;

/// A fixed-size, non-migratable batch job: `work` CPU-seconds, then exit.
struct BatchJob {
    work: f64,
}

impl Program for BatchJob {
    fn on_wake(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
        match wake {
            Wake::Started => ctx.compute(self.work),
            Wake::OpDone => ctx.exit(),
            _ => {}
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// The resize rules the malleable arm installs: grow by 2 (to at most 4
/// ranks, leaving ws5/ws6 for batch work) while ≥ 50% of the cluster is
/// free; shrink back toward 2 while ≥ 30% of it is overloaded.
pub fn paper_rules() -> Vec<ResizeRule> {
    vec![
        ResizeRule {
            app: "malleable_tree".to_string(),
            metric: ResizeMetric::FreeFrac,
            op: RuleOp::GreaterEq,
            threshold: 0.5,
            action: ResizeAction::Expand,
            step: 2,
            min_ranks: APP_RANKS,
            max_ranks: 4,
        },
        ResizeRule {
            app: "malleable_tree".to_string(),
            metric: ResizeMetric::OverloadedFrac,
            op: RuleOp::GreaterEq,
            threshold: 0.3,
            action: ResizeAction::Shrink,
            step: 2,
            min_ranks: APP_RANKS,
            max_ranks: 4,
        },
    ]
}

/// Rules that can never fire (`freeFrac ≥ 2` is unsatisfiable): a
/// configured-but-inert job for the byte-identity gate.
pub fn inert_rules() -> Vec<ResizeRule> {
    vec![ResizeRule {
        app: "malleable_tree".to_string(),
        metric: ResizeMetric::FreeFrac,
        op: RuleOp::GreaterEq,
        threshold: 2.0,
        action: ResizeAction::Expand,
        step: 2,
        min_ranks: APP_RANKS,
        max_ranks: 4,
    }]
}

/// How the registry is configured for one arm.
pub enum Arm {
    /// No malleable job registered (the fixed-size baseline).
    Fixed,
    /// A malleable job registered with the given rules.
    Malleable(Vec<ResizeRule>),
}

/// Everything one arm reports.
pub struct MalleableRun {
    /// Batch jobs submitted.
    pub jobs: usize,
    /// Batch jobs that ran to completion inside the horizon.
    pub jobs_done: usize,
    /// Mean batch-job turnaround (submit → exit), seconds.
    pub mean_turnaround_s: f64,
    /// Completed jobs (batch + the MPI app) per hour of makespan.
    pub throughput_jobs_per_h: f64,
    /// Last completion time (batch or app), seconds.
    pub makespan_s: f64,
    /// When the malleable application finished (all ranks), seconds.
    pub app_finished_s: f64,
    /// Committed expand transactions.
    pub expands: usize,
    /// Committed shrink transactions.
    pub shrinks: usize,
    /// Rendered trace events when recording was requested.
    pub trace: Option<Vec<String>>,
}

fn spawn_wave(
    sim: &mut Sim,
    hosts: &[u32],
    per_host: usize,
    work: f64,
    submitted: &mut Vec<(Pid, SimTime)>,
) {
    let now = sim.now();
    for &h in hosts {
        for _ in 0..per_host {
            let pid = sim.spawn(
                HostId(h),
                Box::new(BatchJob { work }),
                SpawnOpts::named("batch_job"),
            );
            submitted.push((pid, now));
        }
    }
}

/// Run one arm of the scenario.
pub fn run(arm: Arm, seed: u64, record_trace: bool) -> MalleableRun {
    let mut hosts = vec![HostConfig::named("hub")];
    hosts.extend((1..=WORKERS).map(|i| HostConfig::named(format!("ws{i}"))));
    let mut sim = Sim::new(
        hosts,
        SimConfig {
            seed,
            trace: record_trace,
            ..SimConfig::default()
        },
    );

    // Ambient daemon activity on every workstation (the §5.2 baseline):
    // a host running one MPI rank then sits visibly above the free-state
    // load cut, so the free fraction tracks genuinely idle machines and
    // the resize rules don't oscillate around the classification edge.
    for h in 1..=WORKERS as u32 {
        sim.spawn(
            HostId(h),
            Box::new(DaemonNoise::new(0.22, 2.0)),
            SpawnOpts::named("daemons"),
        );
    }

    // The malleable world first, so its coordinator pid exists for the
    // registry's job table. 2400 reference CPU-seconds of independent
    // items over block-cyclic arrays.
    let app_cfg = MalleableTreeConfig {
        items: 1_200,
        item_cost: 2.0,
        chunk_items: 4,
        block: 4,
        poll_cost: 0.05,
        rss_kb: 16_384,
        seed: 7,
    };
    let mpi = Mpi::new();
    let comm = mpi.create_comm(vec![]);
    let hpcm = HpcmHooks::new();
    let mut rank_pids = Vec::new();
    let mut schema = None;
    for rank in 0..APP_RANKS {
        let app = MalleableTree::new(app_cfg.clone(), mpi.clone(), comm);
        schema.get_or_insert_with(|| MigratableApp::schema(&app));
        let pid = HpcmShell::spawn_on(
            &mut sim,
            HostId(1 + rank),
            app,
            HpcmConfig::default(),
            Some(mpi.clone()),
            hpcm.clone(),
        );
        let task = mpi.task_of(pid).expect("task bound at spawn");
        mpi.join(comm, task).expect("join world");
        rank_pids.push(pid);
    }

    let malleable_jobs = match arm {
        Arm::Fixed => Vec::new(),
        Arm::Malleable(rules) => vec![MalleableJob::new(
            "malleable_tree",
            "ws1",
            rank_pids[0].0,
            vec!["ws1".to_string(), "ws2".to_string()],
            rules,
        )],
    };
    let monitored: Vec<HostId> = (1..=WORKERS as u32).map(HostId).collect();
    let dep = deploy(
        &mut sim,
        HostId(0),
        &monitored,
        DeployConfig {
            overload_confirm: SimDuration::from_secs(30),
            malleable_jobs,
            resize_cooldown: SimDuration::from_secs(45),
            ..DeployConfig::default()
        },
    );
    dep.schemas.put(schema.expect("schema captured"));

    let mut submitted: Vec<(Pid, SimTime)> = Vec::new();
    sim.run_until(SimTime::from_secs(WAVE1_S));
    spawn_wave(
        &mut sim,
        &[5, 6],
        WAVE1_JOBS_PER_HOST,
        WAVE1_JOB_CPU_S,
        &mut submitted,
    );
    sim.run_until(SimTime::from_secs(WAVE2_S));
    spawn_wave(
        &mut sim,
        &(1..=WORKERS as u32).collect::<Vec<_>>(),
        WAVE2_JOBS_PER_HOST,
        WAVE2_JOB_CPU_S,
        &mut submitted,
    );
    sim.run_until(SimTime::from_secs(HORIZON_S));

    // Batch-job accounting.
    let mut turnarounds = Vec::new();
    let mut last_done = SimTime::from_secs(0);
    for &(pid, at) in &submitted {
        if let Some(exit) = sim.exited_at(pid) {
            turnarounds.push(exit.since(at).as_secs_f64());
            last_done = last_done.max(exit);
        }
    }

    // App accounting: every rank that completed must carry the exact
    // digest — malleability is not allowed to buy time with wrong answers.
    let expected = MalleableTree::expected_digest(&app_cfg);
    let (mut app_done, mut app_finished) = (0usize, SimTime::from_secs(0));
    {
        let log = hpcm.0.borrow();
        for c in log.completions.iter().filter(|c| c.app == "malleable_tree") {
            assert_eq!(c.digest, expected, "corrupt result under reconfiguration");
            app_done += 1;
            app_finished = app_finished.max(c.finished_at);
        }
    }
    assert!(app_done > 0, "malleable app never finished");
    last_done = last_done.max(app_finished);

    let jobs_done = turnarounds.len();
    let completions = jobs_done + 1; // the MPI app counts once
    let makespan_s = last_done.as_secs_f64();
    let trace = record_trace.then(|| {
        sim.kernel()
            .trace
            .events()
            .iter()
            .map(|e| format!("{:?} {:?} {}", e.t, e.kind, e.detail))
            .collect()
    });
    MalleableRun {
        jobs: submitted.len(),
        jobs_done,
        mean_turnaround_s: turnarounds.iter().sum::<f64>() / jobs_done.max(1) as f64,
        throughput_jobs_per_h: completions as f64 * 3_600.0 / makespan_s,
        makespan_s,
        app_finished_s: app_finished.as_secs_f64(),
        expands: hpcm.resize_count(ResizeKind::Expand, MigrationOutcome::Committed),
        shrinks: hpcm.resize_count(ResizeKind::Shrink, MigrationOutcome::Committed),
        trace,
    }
}
