//! The cluster simulator kernel.
//!
//! [`Sim`] owns the hosts, the network, the event queue and the process
//! table, and drives [`Program`]s according to the execution model described
//! in [`crate::program`]. All state changes flow through events, so a run is
//! a deterministic function of the configuration and seed.

use crate::ctx::Ctx;
use crate::ids::{HostId, Pid};
use crate::message::{Envelope, RecvFilter};
use crate::program::{Op, Program, SpawnOpts, Wake};
use crate::recorder::Recorder;
use crate::trace::{Trace, TraceKind};
use ars_faults::{Fault, FaultPlan, FaultStats};
use ars_obs::{Obs, ObsEvent};
use ars_simcore::{EventId, EventQueue, FxHashMap, FxHashSet, JobId, SimDuration, SimRng, SimTime};
use ars_simhost::{Host, HostConfig, ProcEntry, ProcState, LOAD_SAMPLE_INTERVAL};
use ars_simnet::{FlowId, Network, NetworkConfig, NodeId};
use std::sync::Arc;

/// Simulator-wide configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Delivery latency for same-host messages (pipes / loopback).
    pub local_latency: SimDuration,
    /// Network configuration.
    pub net: NetworkConfig,
    /// RNG seed; every run with the same seed and inputs is identical.
    pub seed: u64,
    /// Record a structured event trace.
    pub trace: bool,
    /// Re-examine every host and the network after each event (the original
    /// O(events × hosts) behaviour) instead of only the entities the event
    /// touched. Results are identical; this exists so `bench_scale` can
    /// measure the dirty-set speedup against a live baseline.
    pub baseline_full_resync: bool,
    /// Fault-injection schedule. The default (disabled) plan installs
    /// nothing: no events, no RNG draws, no interception — runs are
    /// byte-identical to a build without the fault layer.
    pub faults: FaultPlan,
    /// Observability session (fault-injection events from the kernel). The
    /// default disabled handle is a no-op, and an enabled one never touches
    /// the kernel RNG or event queue — same byte-identity discipline as
    /// `faults`.
    pub obs: Obs,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            local_latency: SimDuration::from_micros(50),
            net: NetworkConfig::default(),
            seed: 0x5EED,
            trace: false,
            baseline_full_resync: false,
            faults: FaultPlan::none(),
            obs: Obs::disabled(),
        }
    }
}

/// Scheduling state of a process.
#[derive(Debug, PartialEq)]
pub(crate) enum RunState {
    /// No op in flight; passive (receives messages/signals directly).
    Idle,
    /// Burning CPU.
    Compute(JobId),
    /// Transmitting over the network.
    SendFlow(FlowId),
    /// Blocked in a receive.
    Recv(RecvFilter),
    /// Blocked in a sleep (guarded by a sequence number).
    Sleep(u64),
    /// Terminated.
    Dead,
}

/// Kernel-side process bookkeeping (the part of a process that is not the
/// program itself).
pub struct ProcMeta {
    pub(crate) pid: Pid,
    pub(crate) host: HostId,
    /// Interned process name: cloning is a refcount bump, so per-heartbeat
    /// and per-trace uses never copy the string bytes.
    pub(crate) name: Arc<str>,
    pub(crate) ops: std::collections::VecDeque<Op>,
    pub(crate) run: RunState,
    pub(crate) mailbox: std::collections::VecDeque<Envelope>,
    pub(crate) signals: std::collections::VecDeque<u32>,
    pub(crate) started_at: SimTime,
    pub(crate) exited_at: Option<SimTime>,
}

struct ProcSlot {
    meta: ProcMeta,
    program: Option<Box<dyn Program>>,
}

pub(crate) struct PendingSpawn {
    pub(crate) pid: Pid,
    pub(crate) host: HostId,
    pub(crate) program: Box<dyn Program>,
    pub(crate) opts: SpawnOpts,
}

enum FlowPurpose {
    Message(Envelope),
    Background,
}

#[derive(Debug)]
pub(crate) enum Event {
    StartProc(Pid),
    CpuDone {
        host: u32,
    },
    NetDone,
    Timer {
        pid: Pid,
        seq: u64,
    },
    // Boxed: the envelope would otherwise quadruple the size of every
    // queue entry, and heap sifting copies entries around.
    Deliver(Box<Envelope>),
    Nudge(Pid),
    LoadTick,
    SampleTick,
    /// Inject `plan.events[i]`.
    Fault(u32),
    /// A one-shot alarm set with [`Ctx::alarm`] fires.
    Alarm {
        pid: Pid,
        token: u64,
    },
}

/// Runtime state of the fault layer: who is down, which links are severed,
/// who is stalled, plus the dedicated message-fault RNG. Present only when
/// the plan is enabled (or faults were scheduled later), so the disabled
/// path costs nothing and perturbs nothing.
pub(crate) struct FaultEngine {
    plan: FaultPlan,
    /// Dedicated RNG for message-fault rolls — never the kernel RNG, so
    /// plan changes cannot perturb fault-free random streams.
    rng: SimRng,
    host_down: Vec<bool>,
    /// Severed host pairs, normalized to (min, max).
    severed: FxHashSet<(u32, u32)>,
    /// Per-host outbound-message hold deadline (monitor stalls).
    stall_until: Vec<SimTime>,
    /// Crashed registry pids: deaf-and-mute, every delivery to or from one
    /// of these is black-holed, including loopback to co-located siblings.
    pid_down: FxHashSet<u64>,
    /// Severed registry-tree edges as pid pairs, normalized to (min, max).
    pid_severed: FxHashSet<(u64, u64)>,
    stats: FaultStats,
}

enum MsgVerdict {
    Deliver,
    Drop,
    Duplicate,
    Delay,
}

impl FaultEngine {
    fn new(plan: FaultPlan, n_hosts: usize) -> Self {
        FaultEngine {
            rng: SimRng::new(plan.seed ^ 0xFA17_CA57),
            host_down: vec![false; n_hosts],
            severed: FxHashSet::default(),
            stall_until: vec![SimTime::ZERO; n_hosts],
            pid_down: FxHashSet::default(),
            pid_severed: FxHashSet::default(),
            stats: FaultStats::default(),
            plan,
        }
    }

    fn sever_key(a: u32, b: u32) -> (u32, u32) {
        (a.min(b), a.max(b))
    }

    fn pid_sever_key(a: u64, b: u64) -> (u64, u64) {
        (a.min(b), a.max(b))
    }

    /// True when pid-level fault state exists; guards the delivery hot path
    /// so runs without registry faults never pay for the lookup.
    fn any_pid_faults(&self) -> bool {
        !self.pid_down.is_empty() || !self.pid_severed.is_empty()
    }

    /// One RNG draw per cross-host delivery; cumulative thresholds make
    /// drop win over duplicate win over delay.
    fn roll(&mut self) -> MsgVerdict {
        let m = self.plan.messages;
        if !m.any() {
            return MsgVerdict::Deliver;
        }
        let r = self.rng.next_f64();
        if r < m.drop {
            MsgVerdict::Drop
        } else if r < m.drop + m.duplicate {
            MsgVerdict::Duplicate
        } else if r < m.drop + m.duplicate + m.delay {
            MsgVerdict::Delay
        } else {
            MsgVerdict::Deliver
        }
    }
}

/// Kernel state shared with programs through [`Ctx`].
pub struct Kernel {
    pub(crate) now: SimTime,
    pub(crate) queue: EventQueue<Event>,
    /// The simulated workstations, indexed by [`HostId`].
    pub hosts: Vec<Host>,
    /// The cluster network; host `i` is node `i`.
    pub net: Network,
    pub(crate) rng: SimRng,
    /// Structured event trace.
    pub trace: Trace,
    pub(crate) config: SimConfig,
    next_pid: u64,
    pub(crate) pending_spawns: Vec<PendingSpawn>,
    pub(crate) pending_kills: Vec<Pid>,
    pub(crate) pending_signals: Vec<(Pid, u32)>,
    /// Per-host slab of in-flight CPU jobs (host id indexes the outer Vec;
    /// the short inner list replaces a `(host, job) -> pid` hash map on the
    /// compute hot path).
    cpu_jobs: Vec<Vec<(JobId, Pid)>>,
    flow_purpose: FxHashMap<FlowId, FlowPurpose>,
    pub(crate) forwarding: FxHashMap<Pid, Pid>,
    cpu_sched: Vec<Option<(u64, SimTime, EventId)>>,
    net_sched: Option<(u64, SimTime, EventId)>,
    timer_seq: u64,
    pub(crate) alarm_seq: u64,
    pub(crate) faults: Option<FaultEngine>,
    /// Interned host-name table: id → name. The companion `host_index` map
    /// is consulted only at config-parse boundaries (name → id resolution);
    /// everything downstream carries the dense u32 id.
    host_names: Vec<Arc<str>>,
    host_index: FxHashMap<Arc<str>, u32>,
    pub(crate) recorder: Option<Recorder>,
    /// Events handled by `run_until` since construction (throughput metric).
    events_handled: u64,
    /// Hosts whose CPU state an event may have changed since the last
    /// resync (`dirty_cpu` de-duplicates the list). Only these are
    /// re-examined; everything else provably needs no rescheduling.
    dirty_hosts: Vec<u32>,
    dirty_cpu: Vec<bool>,
    /// The network flow set may have changed since the last resync.
    net_dirty: bool,
}

impl Kernel {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Resolve a hostname to its id.
    pub fn host_id(&self, name: &str) -> Option<HostId> {
        self.host_index.get(name).map(|&i| HostId(i))
    }

    /// Interned name of a host (trace-emit boundary).
    pub fn host_name(&self, id: HostId) -> &Arc<str> {
        &self.host_names[id.0 as usize]
    }

    /// Number of events handled by the kernel loop so far.
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Allocate a fresh pid (consumed by a pending spawn).
    pub(crate) fn alloc_pid(&mut self) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        pid
    }

    /// Start a persistent background stream between two hosts (counts into
    /// the NIC byte counters and contends for bandwidth forever).
    pub fn start_background_stream(&mut self, src: HostId, dst: HostId) -> FlowId {
        let id = self
            .net
            .start_flow(self.now, NodeId(src.0), NodeId(dst.0), None);
        self.flow_purpose.insert(id, FlowPurpose::Background);
        self.net_dirty = true;
        id
    }

    /// Stop a background stream; returns bytes it carried.
    pub fn stop_background_stream(&mut self, id: FlowId) -> Option<f64> {
        self.flow_purpose.remove(&id);
        self.net_dirty = true;
        self.net.end_flow(self.now, id)
    }

    fn cpu_job_insert(&mut self, host: u32, job: JobId, pid: Pid) {
        self.cpu_jobs[host as usize].push((job, pid));
    }

    fn cpu_job_remove(&mut self, host: u32, job: JobId) -> Option<Pid> {
        let jobs = &mut self.cpu_jobs[host as usize];
        let i = jobs.iter().position(|&(j, _)| j == job)?;
        Some(jobs.swap_remove(i).1)
    }

    /// Note that `host`'s CPU job set may have changed; the next resync will
    /// re-examine its completion schedule. Idempotent and cheap.
    fn mark_cpu_dirty(&mut self, host: u32) {
        if !self.dirty_cpu[host as usize] {
            self.dirty_cpu[host as usize] = true;
            self.dirty_hosts.push(host);
        }
    }
}

/// The cluster simulator (see module docs).
pub struct Sim {
    kernel: Kernel,
    procs: Vec<ProcSlot>,
}

impl Sim {
    /// Build a cluster from host configurations.
    pub fn new(host_configs: Vec<HostConfig>, config: SimConfig) -> Sim {
        let n = host_configs.len();
        let host_names: Vec<Arc<str>> = host_configs
            .iter()
            .map(|c| Arc::from(c.name.as_str()))
            .collect();
        let host_index = host_names
            .iter()
            .enumerate()
            .map(|(i, name)| (name.clone(), i as u32))
            .collect();
        let mut trace = Trace::new();
        trace.set_enabled(config.trace);
        let mut kernel = Kernel {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            hosts: host_configs.into_iter().map(Host::new).collect(),
            net: Network::new(n, config.net.clone()),
            rng: SimRng::new(config.seed),
            trace,
            config,
            next_pid: 0,
            pending_spawns: Vec::new(),
            pending_kills: Vec::new(),
            pending_signals: Vec::new(),
            cpu_jobs: vec![Vec::new(); n],
            flow_purpose: FxHashMap::default(),
            forwarding: FxHashMap::default(),
            cpu_sched: vec![None; n],
            net_sched: None,
            timer_seq: 0,
            alarm_seq: 0,
            faults: None,
            host_names,
            host_index,
            recorder: None,
            events_handled: 0,
            dirty_hosts: Vec::new(),
            dirty_cpu: vec![false; n],
            net_dirty: false,
        };
        kernel
            .queue
            .push(SimTime::ZERO + LOAD_SAMPLE_INTERVAL, Event::LoadTick);
        if kernel.config.faults.is_enabled() {
            let plan = kernel.config.faults.clone();
            for (i, tf) in plan.events.iter().enumerate() {
                kernel.queue.push(tf.at, Event::Fault(i as u32));
            }
            kernel.faults = Some(FaultEngine::new(plan, n));
        }
        Sim {
            kernel,
            procs: Vec::new(),
        }
    }

    /// Schedule one more fault after construction (tests often need fault
    /// times relative to pids or events that only exist once the run is
    /// set up). Installs the fault engine on first use.
    pub fn schedule_fault(&mut self, at: SimTime, fault: Fault) {
        let n = self.kernel.hosts.len();
        let engine = self
            .kernel
            .faults
            .get_or_insert_with(|| FaultEngine::new(FaultPlan::none(), n));
        let idx = engine.plan.events.len() as u32;
        engine
            .plan
            .events
            .push(ars_faults::TimedFault { at, fault });
        self.kernel.queue.push(at, Event::Fault(idx));
    }

    /// Counters kept by the fault layer; `None` when no faults were ever
    /// configured or scheduled.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.kernel.faults.as_ref().map(|e| &e.stats)
    }

    /// True while `host` is crashed by the fault layer.
    pub fn host_is_down(&self, host: HostId) -> bool {
        self.kernel
            .faults
            .as_ref()
            .is_some_and(|e| e.host_down[host.0 as usize])
    }

    /// True while `pid` is crashed by a [`Fault::RegistryCrash`] (deaf and
    /// mute, awaiting its paired recover).
    pub fn registry_is_down(&self, pid: Pid) -> bool {
        self.kernel
            .faults
            .as_ref()
            .is_some_and(|e| e.pid_down.contains(&pid.0))
    }

    /// Enable the periodic metric recorder (the paper samples every 10 s).
    pub fn enable_recorder(&mut self, interval: SimDuration) {
        let names: Vec<String> = self
            .kernel
            .hosts
            .iter()
            .map(|h| h.name().to_string())
            .collect();
        self.kernel.recorder = Some(Recorder::new(interval, &names));
        self.kernel
            .queue
            .push(self.kernel.now + interval, Event::SampleTick);
    }

    /// The recorder, if enabled.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.kernel.recorder.as_ref()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// Kernel access (hosts, network, trace).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable kernel access (background streams, trace control).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Spawn a process on a host; it starts at the current time.
    pub fn spawn(&mut self, host: HostId, program: Box<dyn Program>, opts: SpawnOpts) -> Pid {
        let pid = self.kernel.alloc_pid();
        self.kernel.pending_spawns.push(PendingSpawn {
            pid,
            host,
            program,
            opts,
        });
        self.apply_pending();
        pid
    }

    /// Post a signal to a process (delivered at op boundaries, or
    /// immediately when the process is passive).
    pub fn signal(&mut self, pid: Pid, sig: u32) {
        self.kernel.pending_signals.push((pid, sig));
        self.apply_pending();
    }

    /// True while the process has not exited.
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.procs
            .get(pid.0 as usize)
            .is_some_and(|s| s.meta.run != RunState::Dead)
    }

    /// Exit time of a terminated process.
    pub fn exited_at(&self, pid: Pid) -> Option<SimTime> {
        self.procs
            .get(pid.0 as usize)
            .and_then(|s| s.meta.exited_at)
    }

    /// Host a process runs (or ran) on.
    pub fn host_of(&self, pid: Pid) -> Option<HostId> {
        self.procs.get(pid.0 as usize).map(|s| s.meta.host)
    }

    /// Borrow a program for inspection (tests and result extraction).
    pub fn program(&self, pid: Pid) -> Option<&dyn Program> {
        self.procs
            .get(pid.0 as usize)
            .and_then(|s| s.program.as_deref())
    }

    /// Mutably borrow a program (result extraction after the run).
    pub fn program_mut(&mut self, pid: Pid) -> Option<&mut (dyn Program + 'static)> {
        self.procs
            .get_mut(pid.0 as usize)
            .and_then(|s| s.program.as_deref_mut())
    }

    /// Run until the event queue empties or `t_end` is reached. Hosts and
    /// network are settled to the stop time.
    pub fn run_until(&mut self, t_end: SimTime) {
        while let Some(t) = self.kernel.queue.peek_time() {
            if t > t_end {
                break;
            }
            let (t, ev) = self.kernel.queue.pop().expect("peeked event exists");
            debug_assert!(t >= self.kernel.now, "event from the past");
            self.kernel.now = t;
            self.kernel.events_handled += 1;
            self.handle(ev);
            self.apply_pending();
            self.resync();
        }
        if t_end != SimTime::MAX {
            self.kernel.now = t_end;
        }
        self.settle();
    }

    /// Run until no events remain (all processes finished or blocked);
    /// time stops at the last event handled.
    pub fn run_to_completion(&mut self) {
        self.run_until(SimTime::MAX);
    }

    fn settle(&mut self) {
        let now = self.kernel.now;
        for host in &mut self.kernel.hosts {
            host.advance(now);
        }
        self.kernel.net.advance(now);
    }

    // --- Event handling -----------------------------------------------------

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::StartProc(pid) => self.dispatch(pid, Wake::Started),
            Event::CpuDone { host } => self.on_cpu_done(host),
            Event::NetDone => self.on_net_done(),
            Event::Timer { pid, seq } => {
                let slot = &mut self.procs[pid.0 as usize];
                if slot.meta.run == RunState::Sleep(seq) {
                    slot.meta.run = RunState::Idle;
                    self.dispatch(pid, Wake::OpDone);
                }
            }
            Event::Deliver(env) => self.on_deliver(*env),
            Event::Nudge(pid) => {
                let slot = &mut self.procs[pid.0 as usize];
                if slot.meta.run == RunState::Idle && slot.meta.ops.is_empty() {
                    if let Some(sig) = slot.meta.signals.pop_front() {
                        self.dispatch(pid, Wake::Signal(sig));
                    }
                }
            }
            Event::LoadTick => {
                let now = self.kernel.now;
                for host in &mut self.kernel.hosts {
                    host.advance(now);
                    host.sample_load(now);
                }
                self.kernel
                    .queue
                    .push(now + LOAD_SAMPLE_INTERVAL, Event::LoadTick);
            }
            Event::SampleTick => {
                let now = self.kernel.now;
                for host in &mut self.kernel.hosts {
                    host.advance(now);
                }
                self.kernel.net.advance(now);
                if let Some(rec) = &mut self.kernel.recorder {
                    rec.sample_all(now, &self.kernel.hosts, &self.kernel.net);
                    let interval = rec.interval();
                    self.kernel.queue.push(now + interval, Event::SampleTick);
                }
            }
            Event::Fault(idx) => self.apply_fault(idx as usize),
            Event::Alarm { pid, token } => {
                let alive = self
                    .procs
                    .get(pid.0 as usize)
                    .is_some_and(|s| s.meta.run != RunState::Dead);
                if alive {
                    self.dispatch(pid, Wake::Alarm(token));
                }
            }
        }
    }

    // --- Fault injection ------------------------------------------------------

    /// Interpret one timed fault from the plan.
    fn apply_fault(&mut self, idx: usize) {
        let Some(engine) = &self.kernel.faults else {
            return;
        };
        let fault = engine.plan.events[idx].fault.clone();
        let now = self.kernel.now;
        match fault {
            Fault::HostCrash { host } => {
                let h = host as usize;
                let engine = self.kernel.faults.as_mut().expect("engine present");
                if engine.host_down[h] {
                    return;
                }
                engine.host_down[h] = true;
                engine.stats.crashes += 1;
                self.kernel
                    .trace
                    .record(now, TraceKind::Fault, format!("host h{host} crashed"));
                self.kernel.config.obs.inc("faults_injected");
                self.kernel
                    .config
                    .obs
                    .record(now, || ObsEvent::FaultInjected {
                        what: format!("host h{host} crashed"),
                    });
                // Every resident process dies with the host.
                let victims: Vec<Pid> = self
                    .procs
                    .iter()
                    .filter(|s| s.meta.host.0 == host && s.meta.run != RunState::Dead)
                    .map(|s| s.meta.pid)
                    .collect();
                for pid in victims {
                    let name = self.procs[pid.0 as usize].meta.name.clone();
                    self.kernel.trace.record(
                        now,
                        TraceKind::Fault,
                        format!("crash of h{host} killed {pid} ({name})"),
                    );
                    if let Some(e) = self.kernel.faults.as_mut() {
                        e.stats.procs_killed += 1;
                    }
                    self.cleanup(pid);
                }
                // In-flight transfers touching the host die with it
                // (cleanup above already ended the victims' own flows).
                for flow in self.kernel.net.flows_touching(NodeId(host)) {
                    self.abort_flow(flow, &format!("h{host} down"));
                }
                self.kernel.hosts[h].set_down(true);
            }
            Fault::HostRecover { host } => {
                let h = host as usize;
                let engine = self.kernel.faults.as_mut().expect("engine present");
                if !engine.host_down[h] {
                    return;
                }
                engine.host_down[h] = false;
                engine.stats.recoveries += 1;
                self.kernel.hosts[h].set_down(false);
                self.kernel.trace.record(
                    now,
                    TraceKind::Fault,
                    format!("host h{host} recovered (empty)"),
                );
                self.kernel.config.obs.inc("faults_injected");
                self.kernel
                    .config
                    .obs
                    .record(now, || ObsEvent::FaultInjected {
                        what: format!("host h{host} recovered"),
                    });
            }
            Fault::PartitionStart { a, b } => {
                let engine = self.kernel.faults.as_mut().expect("engine present");
                for &x in &a {
                    for &y in &b {
                        if x != y {
                            engine.severed.insert(FaultEngine::sever_key(x, y));
                        }
                    }
                }
                self.kernel.trace.record(
                    now,
                    TraceKind::Fault,
                    format!("partition: {a:?} | {b:?}"),
                );
                self.kernel.config.obs.inc("faults_injected");
                self.kernel
                    .config
                    .obs
                    .record(now, || ObsEvent::FaultInjected {
                        what: format!("partition: {a:?} | {b:?}"),
                    });
                // Transfers crossing the cut are torn down.
                let crossing: Vec<FlowId> = {
                    let engine = self.kernel.faults.as_ref().expect("engine present");
                    self.kernel
                        .net
                        .active_flow_endpoints()
                        .filter(|(_, s, d)| {
                            engine.severed.contains(&FaultEngine::sever_key(s.0, d.0))
                        })
                        .map(|(id, _, _)| id)
                        .collect()
                };
                for flow in crossing {
                    self.abort_flow(flow, "link partitioned");
                }
            }
            Fault::PartitionEnd => {
                let engine = self.kernel.faults.as_mut().expect("engine present");
                engine.severed.clear();
                self.kernel
                    .trace
                    .record(now, TraceKind::Fault, "partition healed");
                self.kernel.config.obs.inc("faults_injected");
                self.kernel
                    .config
                    .obs
                    .record(now, || ObsEvent::FaultInjected {
                        what: "partition healed".to_string(),
                    });
            }
            Fault::MonitorStall { host, duration } => {
                let engine = self.kernel.faults.as_mut().expect("engine present");
                let until = now + duration;
                let h = host as usize;
                if engine.stall_until[h] < until {
                    engine.stall_until[h] = until;
                }
                self.kernel.trace.record(
                    now,
                    TraceKind::Fault,
                    format!("h{host} stalled for {duration}"),
                );
                self.kernel.config.obs.inc("faults_injected");
                self.kernel
                    .config
                    .obs
                    .record(now, || ObsEvent::FaultInjected {
                        what: format!("h{host} stalled for {duration}"),
                    });
            }
            Fault::ProcessRestart { pid } => {
                let pid = Pid(pid);
                if let Some(e) = self.kernel.faults.as_mut() {
                    e.stats.restarts += 1;
                }
                self.kernel
                    .trace
                    .record(now, TraceKind::Fault, format!("restart signal -> {pid}"));
                self.kernel.config.obs.inc("faults_injected");
                self.kernel
                    .config
                    .obs
                    .record(now, || ObsEvent::FaultInjected {
                        what: format!("restart signal -> {pid}"),
                    });
                self.kernel
                    .pending_signals
                    .push((pid, ars_faults::RESTART_SIGNAL));
                self.apply_pending();
            }
            Fault::RegistryCrash { pid } => {
                let engine = self.kernel.faults.as_mut().expect("engine present");
                if !engine.pid_down.insert(pid) {
                    return;
                }
                engine.stats.registry_crashes += 1;
                let pid = Pid(pid);
                self.kernel.trace.record(
                    now,
                    TraceKind::Fault,
                    format!("registry {pid} crashed (deaf and mute)"),
                );
                self.kernel.config.obs.inc("faults_injected");
                self.kernel
                    .config
                    .obs
                    .record(now, || ObsEvent::FaultInjected {
                        what: format!("registry {pid} crashed"),
                    });
            }
            Fault::RegistryRecover { pid } => {
                let engine = self.kernel.faults.as_mut().expect("engine present");
                if !engine.pid_down.remove(&pid) {
                    return;
                }
                engine.stats.registry_recoveries += 1;
                let pid = Pid(pid);
                self.kernel.trace.record(
                    now,
                    TraceKind::Fault,
                    format!("registry {pid} recovered (restarting empty)"),
                );
                self.kernel.config.obs.inc("faults_injected");
                self.kernel
                    .config
                    .obs
                    .record(now, || ObsEvent::FaultInjected {
                        what: format!("registry {pid} recovered"),
                    });
                // The process comes back as if freshly exec'd: deliver the
                // restart signal so it drops soft state and rebuilds it via
                // the ReRegister path.
                self.kernel
                    .pending_signals
                    .push((pid, ars_faults::RESTART_SIGNAL));
                self.apply_pending();
            }
            Fault::EdgePartition { a, b } => {
                let engine = self.kernel.faults.as_mut().expect("engine present");
                if !engine.pid_severed.insert(FaultEngine::pid_sever_key(a, b)) {
                    return;
                }
                let (a, b) = (Pid(a), Pid(b));
                self.kernel.trace.record(
                    now,
                    TraceKind::Fault,
                    format!("tree edge {a}~{b} severed"),
                );
                self.kernel.config.obs.inc("faults_injected");
                self.kernel
                    .config
                    .obs
                    .record(now, || ObsEvent::FaultInjected {
                        what: format!("tree edge {a}~{b} severed"),
                    });
            }
            Fault::EdgeHeal { a, b } => {
                let engine = self.kernel.faults.as_mut().expect("engine present");
                if !engine.pid_severed.remove(&FaultEngine::pid_sever_key(a, b)) {
                    return;
                }
                let (a, b) = (Pid(a), Pid(b));
                self.kernel.trace.record(
                    now,
                    TraceKind::Fault,
                    format!("tree edge {a}~{b} healed"),
                );
                self.kernel.config.obs.inc("faults_injected");
                self.kernel
                    .config
                    .obs
                    .record(now, || ObsEvent::FaultInjected {
                        what: format!("tree edge {a}~{b} healed"),
                    });
            }
        }
    }

    /// Tear down an in-flight flow killed by a fault. A message flow's
    /// envelope is lost (fire-and-forget: the blocked sender's op still
    /// completes); background streams just end.
    fn abort_flow(&mut self, flow: FlowId, why: &str) {
        let now = self.kernel.now;
        self.kernel.net.end_flow(now, flow);
        self.kernel.net_dirty = true;
        match self.kernel.flow_purpose.remove(&flow) {
            Some(FlowPurpose::Message(env)) => {
                let sender = env.from;
                self.kernel.trace.record(
                    now,
                    TraceKind::Fault,
                    format!(
                        "in-flight message tag {} {} -> {} lost: {why}",
                        env.tag, env.from, env.to
                    ),
                );
                if let Some(slot) = self.procs.get_mut(sender.0 as usize) {
                    if matches!(slot.meta.run, RunState::SendFlow(f) if f == flow) {
                        slot.meta.run = RunState::Idle;
                        self.dispatch(sender, Wake::OpDone);
                    }
                }
            }
            Some(FlowPurpose::Background) | None => {}
        }
    }

    fn on_cpu_done(&mut self, host: u32) {
        self.kernel.cpu_sched[host as usize] = None;
        // The scheduled completion was consumed (and end_compute below bumps
        // the version): this host must be re-examined either way.
        self.kernel.mark_cpu_dirty(host);
        let now = self.kernel.now;
        self.kernel.hosts[host as usize].advance(now);
        // Reap one at a time (ascending job id, same order as the finished
        // list) to keep this hot path allocation-free.
        while let Some(job) = self.kernel.hosts[host as usize].first_finished_cpu_job() {
            self.kernel.hosts[host as usize].end_compute(now, job);
            if let Some(pid) = self.kernel.cpu_job_remove(host, job) {
                self.kernel.hosts[host as usize].proc_set_state(pid.0, ProcState::Sleeping);
                let slot = &mut self.procs[pid.0 as usize];
                if matches!(slot.meta.run, RunState::Compute(j) if j == job) {
                    slot.meta.run = RunState::Idle;
                    self.dispatch(pid, Wake::OpDone);
                }
            }
        }
    }

    fn on_net_done(&mut self) {
        self.kernel.net_sched = None;
        self.kernel.net_dirty = true;
        let now = self.kernel.now;
        self.kernel.net.advance(now);
        while let Some(flow) = self.kernel.net.first_finished_flow() {
            self.kernel.net.end_flow(now, flow);
            match self.kernel.flow_purpose.remove(&flow) {
                Some(FlowPurpose::Message(env)) => {
                    let latency = self.kernel.config.net.latency;
                    let sender = env.from;
                    self.enqueue_delivery(env, latency);
                    let slot = &mut self.procs[sender.0 as usize];
                    if matches!(slot.meta.run, RunState::SendFlow(f) if f == flow) {
                        slot.meta.run = RunState::Idle;
                        self.dispatch(sender, Wake::OpDone);
                    }
                }
                Some(FlowPurpose::Background) | None => {}
            }
        }
    }

    /// Queue a message delivery `base` after now, routing it through the
    /// fault layer when one is installed. Cross-host deliveries can be
    /// black-holed (destination down, link partitioned), held (source
    /// stalled) or hit by the seeded drop/duplicate/delay roll. Loopback
    /// is reliable, and with no engine this is exactly one queue push.
    fn enqueue_delivery(&mut self, env: Envelope, base: SimDuration) {
        let src_host = self.procs.get(env.from.0 as usize).map(|s| s.meta.host.0);
        let dst_host = self.procs.get(env.to.0 as usize).map(|s| s.meta.host.0);
        let Kernel {
            now,
            queue,
            trace,
            faults,
            ..
        } = &mut self.kernel;
        let now = *now;
        // Pid-level registry faults come first and apply to *loopback* too:
        // co-located tree nodes talk over the same host, so a crashed
        // registry or a severed parent↔child edge must black-hole traffic
        // the host-level checks below would wave through. No RNG is drawn
        // here, and with no pid faults active the guard is two emptiness
        // tests — runs without registry faults stay byte-identical.
        if let Some(engine) = faults.as_mut() {
            if engine.any_pid_faults() {
                let (f, t) = (env.from.0, env.to.0);
                if engine.pid_down.contains(&f) || engine.pid_down.contains(&t) {
                    engine.stats.msgs_blackholed_registry += 1;
                    trace.record(
                        now,
                        TraceKind::Fault,
                        format!(
                            "message tag {} {} -> {} lost: registry crashed",
                            env.tag, env.from, env.to
                        ),
                    );
                    return;
                }
                if engine
                    .pid_severed
                    .contains(&FaultEngine::pid_sever_key(f, t))
                {
                    engine.stats.msgs_blackholed_registry += 1;
                    trace.record(
                        now,
                        TraceKind::Fault,
                        format!(
                            "message tag {} {} -> {} lost: tree edge severed",
                            env.tag, env.from, env.to
                        ),
                    );
                    return;
                }
            }
        }
        let cross = match (src_host, dst_host) {
            (Some(a), Some(b)) if a != b => Some((a, b)),
            _ => None,
        };
        let (engine, (src, dst)) = match (faults.as_mut(), cross) {
            (Some(e), Some(pair)) => (e, pair),
            _ => {
                queue.push(now + base, Event::Deliver(Box::new(env)));
                return;
            }
        };
        if engine.host_down[dst as usize] {
            engine.stats.msgs_blackholed += 1;
            trace.record(
                now,
                TraceKind::Fault,
                format!(
                    "message tag {} {} -> {} lost: h{dst} down",
                    env.tag, env.from, env.to
                ),
            );
            return;
        }
        if engine.severed.contains(&FaultEngine::sever_key(src, dst)) {
            engine.stats.msgs_blackholed += 1;
            trace.record(
                now,
                TraceKind::Fault,
                format!(
                    "message tag {} {} -> {} lost: h{src}~h{dst} partitioned",
                    env.tag, env.from, env.to
                ),
            );
            return;
        }
        let mut at = now + base;
        if engine.stall_until[src as usize] > now {
            engine.stats.msgs_stalled += 1;
            at = engine.stall_until[src as usize] + base;
        }
        match engine.roll() {
            MsgVerdict::Deliver => {
                queue.push(at, Event::Deliver(Box::new(env)));
            }
            MsgVerdict::Drop => {
                engine.stats.msgs_dropped += 1;
                trace.record(
                    now,
                    TraceKind::Fault,
                    format!(
                        "message tag {} {} -> {} dropped (fault roll)",
                        env.tag, env.from, env.to
                    ),
                );
            }
            MsgVerdict::Duplicate => {
                engine.stats.msgs_duplicated += 1;
                trace.record(
                    now,
                    TraceKind::Fault,
                    format!(
                        "message tag {} {} -> {} duplicated (fault roll)",
                        env.tag, env.from, env.to
                    ),
                );
                queue.push(at, Event::Deliver(Box::new(env.clone())));
                queue.push(at, Event::Deliver(Box::new(env)));
            }
            MsgVerdict::Delay => {
                engine.stats.msgs_delayed += 1;
                let delay = engine.plan.messages.delay_by;
                trace.record(
                    now,
                    TraceKind::Fault,
                    format!(
                        "message tag {} {} -> {} delayed {delay} (fault roll)",
                        env.tag, env.from, env.to
                    ),
                );
                queue.push(at + delay, Event::Deliver(Box::new(env)));
            }
        }
    }

    fn on_deliver(&mut self, mut env: Envelope) {
        // Follow the forwarding chain set up by migrations.
        let mut hops = 0;
        while let Some(&next) = self.kernel.forwarding.get(&env.to) {
            env.to = next;
            hops += 1;
            assert!(hops < 64, "forwarding loop");
        }
        let pid = env.to;
        let Some(slot) = self.procs.get_mut(pid.0 as usize) else {
            return;
        };
        match &slot.meta.run {
            RunState::Dead => {
                self.kernel
                    .trace
                    .record_with(self.kernel.now, TraceKind::Deliver, || {
                        format!("dropped message tag {} for dead {pid}", env.tag)
                    });
            }
            RunState::Recv(filter) if filter.matches(&env) => {
                slot.meta.run = RunState::Idle;
                self.dispatch(pid, Wake::Received(env));
            }
            RunState::Idle if slot.meta.ops.is_empty() => {
                self.dispatch(pid, Wake::Received(env));
            }
            _ => slot.meta.mailbox.push_back(env),
        }
    }

    // --- Program dispatch ----------------------------------------------------

    fn dispatch(&mut self, pid: Pid, wake: Wake) {
        let mut wake = Some(wake);
        while let Some(w) = wake.take() {
            {
                let Sim { kernel, procs } = self;
                let slot = &mut procs[pid.0 as usize];
                if slot.meta.run == RunState::Dead {
                    return;
                }
                let Some(mut program) = slot.program.take() else {
                    return;
                };
                {
                    let mut ctx = Ctx::new(kernel, &mut slot.meta);
                    program.on_wake(&mut ctx, w);
                }
                slot.program = Some(program);
            }
            self.apply_pending();
            wake = self.start_next_op(pid);
        }
    }

    /// Start the next queued op. Returns a wake to deliver immediately when
    /// the op completed synchronously; `None` when the process is blocked,
    /// passive, or dead.
    fn start_next_op(&mut self, pid: Pid) -> Option<Wake> {
        let now = self.kernel.now;
        let (host, op) = {
            let slot = &mut self.procs[pid.0 as usize];
            if slot.meta.run != RunState::Idle {
                return None;
            }
            match slot.meta.ops.pop_front() {
                Some(op) => (slot.meta.host, op),
                None => {
                    // Passive: drain one queued message or signal.
                    if let Some(env) = slot.meta.mailbox.pop_front() {
                        return Some(Wake::Received(env));
                    }
                    if let Some(sig) = slot.meta.signals.pop_front() {
                        return Some(Wake::Signal(sig));
                    }
                    return None;
                }
            }
        };
        match op {
            Op::Compute { work } => {
                let job = self.kernel.hosts[host.0 as usize].start_compute(now, work);
                self.kernel.mark_cpu_dirty(host.0);
                self.kernel.cpu_job_insert(host.0, job, pid);
                self.kernel.hosts[host.0 as usize].proc_set_state(pid.0, ProcState::Runnable);
                self.procs[pid.0 as usize].meta.run = RunState::Compute(job);
                None
            }
            Op::Send {
                mut to,
                tag,
                payload,
                wire_bytes,
            } => {
                let mut hops = 0;
                while let Some(&next) = self.kernel.forwarding.get(&to) {
                    to = next;
                    hops += 1;
                    assert!(hops < 64, "forwarding loop");
                }
                let mut env = Envelope::new(pid, to, tag, payload);
                if let Some(b) = wire_bytes {
                    env.wire_bytes = env.wire_bytes.max(b);
                }
                let dst_host = self
                    .procs
                    .get(to.0 as usize)
                    .map(|s| s.meta.host)
                    .unwrap_or(host);
                if dst_host == host {
                    let latency = self.kernel.config.local_latency;
                    self.enqueue_delivery(env, latency);
                    Some(Wake::OpDone)
                } else {
                    let flow = self.kernel.net.start_flow(
                        now,
                        NodeId(host.0),
                        NodeId(dst_host.0),
                        Some(env.wire_bytes as f64),
                    );
                    self.kernel.net_dirty = true;
                    self.kernel
                        .flow_purpose
                        .insert(flow, FlowPurpose::Message(env));
                    self.procs[pid.0 as usize].meta.run = RunState::SendFlow(flow);
                    None
                }
            }
            Op::Recv { filter } => {
                let slot = &mut self.procs[pid.0 as usize];
                if let Some(idx) = slot.meta.mailbox.iter().position(|e| filter.matches(e)) {
                    let env = slot.meta.mailbox.remove(idx).expect("index valid");
                    Some(Wake::Received(env))
                } else {
                    slot.meta.run = RunState::Recv(filter);
                    None
                }
            }
            Op::SleepUntil { at } => {
                if at <= now {
                    Some(Wake::OpDone)
                } else {
                    self.kernel.timer_seq += 1;
                    let seq = self.kernel.timer_seq;
                    self.kernel.queue.push(at, Event::Timer { pid, seq });
                    self.procs[pid.0 as usize].meta.run = RunState::Sleep(seq);
                    None
                }
            }
            Op::Exit => {
                self.cleanup(pid);
                None
            }
        }
    }

    // --- Pending actions ------------------------------------------------------

    fn apply_pending(&mut self) {
        // Spawns: allocate slots in pid order.
        while !self.kernel.pending_spawns.is_empty() {
            let spawn = self.kernel.pending_spawns.remove(0);
            debug_assert_eq!(spawn.pid.0 as usize, self.procs.len(), "pid/slot skew");
            let now = self.kernel.now;
            let name: Arc<str> = spawn.opts.name.into();
            // Spawning onto a crashed host fails: the pid slot is created
            // dead (preserving the pid==slot invariant) and the program is
            // dropped, but the host never sees the process.
            let host_down = self
                .kernel
                .faults
                .as_ref()
                .is_some_and(|e| e.host_down[spawn.host.0 as usize]);
            if host_down {
                if let Some(e) = self.kernel.faults.as_mut() {
                    e.stats.spawns_failed += 1;
                }
                self.kernel.trace.record_with(now, TraceKind::Fault, || {
                    format!(
                        "spawn of {} ({name}) refused: h{} down",
                        spawn.pid, spawn.host.0
                    )
                });
                self.procs.push(ProcSlot {
                    meta: ProcMeta {
                        pid: spawn.pid,
                        host: spawn.host,
                        name,
                        ops: std::collections::VecDeque::new(),
                        run: RunState::Dead,
                        mailbox: std::collections::VecDeque::new(),
                        signals: std::collections::VecDeque::new(),
                        started_at: now,
                        exited_at: Some(now),
                    },
                    program: None,
                });
                continue;
            }
            let host = &mut self.kernel.hosts[spawn.host.0 as usize];
            host.proc_add(ProcEntry {
                pid: spawn.pid.0,
                name: name.clone(),
                start_time: now,
                state: ProcState::Sleeping,
                migratable: spawn.opts.migratable,
            });
            if host.mem_reserve(spawn.pid.0, spawn.opts.mem).is_err() {
                self.kernel.trace.record_with(now, TraceKind::Custom, || {
                    format!("{name} OOM reserving for {}", spawn.pid)
                });
            }
            self.kernel.trace.record_with(now, TraceKind::Spawn, || {
                format!("{} ({name}) on h{}", spawn.pid, spawn.host.0)
            });
            self.procs.push(ProcSlot {
                meta: ProcMeta {
                    pid: spawn.pid,
                    host: spawn.host,
                    name,
                    ops: std::collections::VecDeque::new(),
                    run: RunState::Idle,
                    mailbox: std::collections::VecDeque::new(),
                    signals: std::collections::VecDeque::new(),
                    started_at: now,
                    exited_at: None,
                },
                program: Some(spawn.program),
            });
            self.kernel.queue.push(now, Event::StartProc(spawn.pid));
        }
        // Kills.
        while let Some(pid) = self.kernel.pending_kills.pop() {
            self.cleanup(pid);
        }
        // Signals.
        while !self.kernel.pending_signals.is_empty() {
            let (pid, sig) = self.kernel.pending_signals.remove(0);
            if let Some(slot) = self.procs.get_mut(pid.0 as usize) {
                if slot.meta.run != RunState::Dead {
                    slot.meta.signals.push_back(sig);
                    self.kernel
                        .trace
                        .record_with(self.kernel.now, TraceKind::Signal, || {
                            format!("signal {sig} -> {pid}")
                        });
                    self.kernel.queue.push(self.kernel.now, Event::Nudge(pid));
                }
            }
        }
    }

    fn cleanup(&mut self, pid: Pid) {
        let now = self.kernel.now;
        let Some(slot) = self.procs.get_mut(pid.0 as usize) else {
            return;
        };
        if slot.meta.run == RunState::Dead {
            return;
        }
        match slot.meta.run {
            RunState::Compute(job) => {
                let h = slot.meta.host.0;
                self.kernel.hosts[h as usize].end_compute(now, job);
                self.kernel.mark_cpu_dirty(h);
                self.kernel.cpu_job_remove(h, job);
            }
            RunState::SendFlow(flow) => {
                self.kernel.net.end_flow(now, flow);
                self.kernel.net_dirty = true;
                self.kernel.flow_purpose.remove(&flow);
            }
            _ => {}
        }
        slot.meta.run = RunState::Dead;
        slot.meta.exited_at = Some(now);
        slot.meta.ops.clear();
        slot.meta.mailbox.clear();
        slot.program = None;
        let h = slot.meta.host.0;
        let name = slot.meta.name.clone(); // refcount bump, not a copy
        self.kernel.hosts[h as usize].proc_remove(pid.0);
        self.kernel
            .trace
            .record_with(now, TraceKind::Exit, || format!("{pid} ({name}) on h{h}"));
    }

    // --- Completion-event resynchronization -----------------------------------

    /// Re-align scheduled completion events with host/network state.
    ///
    /// Only the hosts marked dirty since the last resync (and the network,
    /// when flagged) are re-examined: an event can only invalidate the
    /// schedule of an entity it mutated, and every mutation site marks its
    /// entity. Dirty hosts are visited in ascending id order — the same
    /// order the old full scan used — so the events pushed (and therefore
    /// their queue sequence numbers, which break same-time ties) are
    /// identical to the settle-everything baseline.
    fn resync(&mut self) {
        if self.kernel.config.baseline_full_resync {
            self.kernel.dirty_hosts.clear();
            self.kernel.dirty_cpu.fill(false);
            self.kernel.net_dirty = false;
            for i in 0..self.kernel.hosts.len() {
                self.resync_host(i);
            }
            self.resync_net();
            return;
        }
        if !self.kernel.dirty_hosts.is_empty() {
            let mut dirty = std::mem::take(&mut self.kernel.dirty_hosts);
            dirty.sort_unstable();
            for &i in &dirty {
                self.kernel.dirty_cpu[i as usize] = false;
                self.resync_host(i as usize);
            }
            dirty.clear();
            self.kernel.dirty_hosts = dirty; // keep the allocation
        }
        if self.kernel.net_dirty {
            self.kernel.net_dirty = false;
            self.resync_net();
        }
    }

    fn resync_host(&mut self, i: usize) {
        let now = self.kernel.now;
        let version = self.kernel.hosts[i].cpu_version();
        let cached_ok = matches!(self.kernel.cpu_sched[i], Some((v, _, _)) if v == version);
        if cached_ok {
            return;
        }
        if let Some((_, _, ev)) = self.kernel.cpu_sched[i].take() {
            self.kernel.queue.cancel(ev);
        }
        if let Some((t, _)) = self.kernel.hosts[i].next_cpu_completion(now) {
            let ev = self.kernel.queue.push(t, Event::CpuDone { host: i as u32 });
            self.kernel.cpu_sched[i] = Some((version, t, ev));
        }
    }

    fn resync_net(&mut self) {
        let now = self.kernel.now;
        let version = self.kernel.net.version();
        let cached_ok = matches!(self.kernel.net_sched, Some((v, _, _)) if v == version);
        if !cached_ok {
            if let Some((_, _, ev)) = self.kernel.net_sched.take() {
                self.kernel.queue.cancel(ev);
            }
            if let Some((t, _)) = self.kernel.net.next_completion(now) {
                let ev = self.kernel.queue.push(t, Event::NetDone);
                self.kernel.net_sched = Some((version, t, ev));
            }
        }
    }
}
