//! Migration policies (paper §5.3) and per-state monitoring frequency.
//!
//! A policy bundles the migration *trigger* conditions evaluated on the
//! source host, a *source gate* that must also hold for migration to be
//! worthwhile, and the conditions a *destination* must satisfy. The paper's
//! three evaluation policies are provided as constructors.
//!
//! Interpretation note: Policy 3's third clause — "the current
//! incoming/outgoing communication flow is no more than 5 MB/s" — is
//! implemented as a source *gate* rather than a trigger: a host that is
//! pumping more than 5 MB/s holds a communication-bound process whose
//! migration would be counterproductive, so migration is allowed only below
//! that rate. (Read as a trigger it would fire on every idle machine.) The
//! destination-side clause is implemented exactly as written.

use crate::simple::RuleOp;
use ars_simcore::SimDuration;
use ars_xmlwire::{HostState, Metrics};

/// A single metric comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// Metric key (as published by the sensor layer).
    pub metric: String,
    /// Comparison operator.
    pub op: RuleOp,
    /// Threshold value.
    pub threshold: f64,
}

impl Condition {
    /// Build a condition.
    pub fn new(metric: impl Into<String>, op: RuleOp, threshold: f64) -> Self {
        Condition {
            metric: metric.into(),
            op,
            threshold,
        }
    }

    /// Evaluate against a metric bag; `None` when the metric is missing.
    pub fn holds(&self, metrics: &Metrics) -> Option<bool> {
        metrics
            .get(&self.metric)
            .map(|v| self.op.apply(v, self.threshold))
    }
}

/// Standard metric keys used by the built-in policies and sensors.
pub mod metric_keys {
    /// 1-minute load average.
    pub const LOAD1: &str = "loadAvg1";
    /// 5-minute load average.
    pub const LOAD5: &str = "loadAvg5";
    /// Number of active processes.
    pub const NPROC: &str = "nproc";
    /// CPU idle percentage over the last sample window.
    pub const CPU_IDLE: &str = "processorStatus";
    /// CPU utilization fraction over the last sample window.
    pub const CPU_UTIL: &str = "cpuUtil";
    /// Max of incoming/outgoing flow, MB/s, over the last sample window.
    pub const NET_FLOW_MBPS: &str = "netFlowMBps";
    /// Outgoing KB/s over the last sample window.
    pub const NET_TX_KBPS: &str = "netTxKBps";
    /// Incoming KB/s over the last sample window.
    pub const NET_RX_KBPS: &str = "netRxKBps";
    /// Available physical memory percentage.
    pub const MEM_AVAIL: &str = "memAvail";
    /// Established IPv4 sockets.
    pub const SOCKETS_ESTABLISHED: &str = "ntStatIpv4:ESTABLISHED";
}

/// A migration policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Policy {
    /// Policy name (for reports).
    pub name: String,
    /// False disables migration entirely (the paper's Policy 1).
    pub migration_enabled: bool,
    /// Migrate when ANY of these hold on the source.
    pub trigger_any: Vec<Condition>,
    /// …and ALL of these hold on the source.
    pub source_gate_all: Vec<Condition>,
    /// A destination must satisfy ALL of these.
    pub dest_all: Vec<Condition>,
    /// How long the trigger must hold continuously before the migration
    /// decision fires (avoids "fault migration caused by small system
    /// performance variations", §5.2; the paper observes 72 s).
    pub warmup: SimDuration,
}

impl Policy {
    /// Paper Policy 1: no migration.
    pub fn no_migration() -> Policy {
        Policy {
            name: "policy1-no-migration".to_string(),
            migration_enabled: false,
            trigger_any: Vec::new(),
            source_gate_all: Vec::new(),
            dest_all: Vec::new(),
            warmup: SimDuration::from_secs(60),
        }
    }

    /// Paper Policy 2: load/process-count thresholds, no communication
    /// awareness.
    pub fn paper_policy2() -> Policy {
        Policy {
            name: "policy2-load-only".to_string(),
            migration_enabled: true,
            trigger_any: vec![
                Condition::new(metric_keys::LOAD1, RuleOp::Greater, 2.0),
                Condition::new(metric_keys::NPROC, RuleOp::Greater, 150.0),
            ],
            source_gate_all: Vec::new(),
            dest_all: vec![
                Condition::new(metric_keys::LOAD1, RuleOp::Less, 1.0),
                Condition::new(metric_keys::NPROC, RuleOp::Less, 100.0),
            ],
            warmup: SimDuration::from_secs(60),
        }
    }

    /// Paper Policy 3: Policy 2 plus communication-flow awareness.
    pub fn paper_policy3() -> Policy {
        let mut p = Policy::paper_policy2();
        p.name = "policy3-comm-aware".to_string();
        p.source_gate_all.push(Condition::new(
            metric_keys::NET_FLOW_MBPS,
            RuleOp::LessEq,
            5.0,
        ));
        p.dest_all.push(Condition::new(
            metric_keys::NET_FLOW_MBPS,
            RuleOp::LessEq,
            3.0,
        ));
        p
    }

    /// Does the source's metric bag ask for a migration?
    /// Missing metrics make a trigger false and a gate false (conservative).
    pub fn should_migrate(&self, metrics: &Metrics) -> bool {
        if !self.migration_enabled {
            return false;
        }
        let triggered = self
            .trigger_any
            .iter()
            .any(|c| c.holds(metrics).unwrap_or(false));
        let gated = self
            .source_gate_all
            .iter()
            .all(|c| c.holds(metrics).unwrap_or(false));
        triggered && gated
    }

    /// Is this destination acceptable? Missing metrics reject it.
    pub fn dest_acceptable(&self, metrics: &Metrics) -> bool {
        self.dest_all
            .iter()
            .all(|c| c.holds(metrics).unwrap_or(false))
    }
}

/// Per-state monitoring frequency (§4: "We configure a time interval as
/// Monitoring Frequency for each state").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitoringFrequency {
    /// Interval while free.
    pub free: SimDuration,
    /// Interval while busy.
    pub busy: SimDuration,
    /// Interval while overloaded (typically the shortest — migration
    /// decisions are pending).
    pub overloaded: SimDuration,
}

impl Default for MonitoringFrequency {
    fn default() -> Self {
        MonitoringFrequency {
            free: SimDuration::from_secs(10),
            busy: SimDuration::from_secs(10),
            overloaded: SimDuration::from_secs(5),
        }
    }
}

impl MonitoringFrequency {
    /// The interval to use in a given state.
    pub fn interval(&self, state: HostState) -> SimDuration {
        match state {
            HostState::Free => self.free,
            HostState::Busy => self.busy,
            HostState::Overloaded | HostState::Unavailable => self.overloaded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(load1: f64, nproc: f64, flow_mbps: f64) -> Metrics {
        let mut m = Metrics::new();
        m.set(metric_keys::LOAD1, load1);
        m.set(metric_keys::NPROC, nproc);
        m.set(metric_keys::NET_FLOW_MBPS, flow_mbps);
        m
    }

    #[test]
    fn policy1_never_migrates() {
        let p = Policy::no_migration();
        assert!(!p.should_migrate(&metrics(99.0, 9999.0, 0.0)));
    }

    #[test]
    fn policy2_triggers_on_load_or_nproc() {
        let p = Policy::paper_policy2();
        assert!(!p.should_migrate(&metrics(1.5, 100.0, 0.0)));
        assert!(p.should_migrate(&metrics(2.1, 100.0, 0.0)));
        assert!(p.should_migrate(&metrics(0.5, 151.0, 0.0)));
        // Boundary: the paper says "greater than 2", so 2.0 does not fire.
        assert!(!p.should_migrate(&metrics(2.0, 150.0, 0.0)));
    }

    #[test]
    fn policy2_destination_conditions() {
        let p = Policy::paper_policy2();
        // Host 2 of Table 2: load 0.97, communicating hard — still accepted
        // because Policy 2 is communication-blind.
        assert!(p.dest_acceptable(&metrics(0.97, 50.0, 7.5)));
        assert!(!p.dest_acceptable(&metrics(1.2, 50.0, 0.0)));
        assert!(!p.dest_acceptable(&metrics(0.5, 120.0, 0.0)));
    }

    #[test]
    fn policy3_rejects_communicating_destination() {
        let p = Policy::paper_policy3();
        // Host 2: load fine, but flow 6.71-7.78 MB/s > 3 MB/s → rejected.
        assert!(!p.dest_acceptable(&metrics(0.97, 50.0, 7.0)));
        // Host 4: free → accepted.
        assert!(p.dest_acceptable(&metrics(0.1, 40.0, 0.0)));
    }

    #[test]
    fn policy3_source_gate_blocks_comm_bound_source() {
        let p = Policy::paper_policy3();
        assert!(p.should_migrate(&metrics(2.5, 100.0, 1.0)));
        assert!(!p.should_migrate(&metrics(2.5, 100.0, 6.0))); // gate fails
    }

    #[test]
    fn missing_metrics_are_conservative() {
        let p = Policy::paper_policy3();
        let mut m = Metrics::new();
        m.set(metric_keys::LOAD1, 3.0);
        // Trigger holds but the gate metric is missing → no migration.
        assert!(!p.should_migrate(&m));
        // Destination metrics missing → unacceptable.
        assert!(!p.dest_acceptable(&Metrics::new()));
    }

    #[test]
    fn monitoring_frequency_by_state() {
        let f = MonitoringFrequency::default();
        assert_eq!(f.interval(HostState::Free), SimDuration::from_secs(10));
        assert_eq!(f.interval(HostState::Overloaded), SimDuration::from_secs(5));
    }

    #[test]
    fn condition_missing_metric_is_none() {
        let c = Condition::new("nope", RuleOp::Greater, 1.0);
        assert_eq!(c.holds(&Metrics::new()), None);
    }
}
