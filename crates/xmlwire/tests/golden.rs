//! Golden wire-format tests: the exact bytes of each protocol message.
//!
//! The live-TCP mode and the simulation share these documents; changing the
//! format silently would break cross-version interoperability, so the exact
//! serialization is pinned here.

use ars_xmlwire::{
    ApplicationSchema, EntityRole, HostState, HostStatic, Message, Metrics, ProcReport,
};

#[test]
fn golden_register() {
    let msg = Message::Register {
        host: HostStatic {
            name: "ws1".to_string(),
            ip: "10.0.0.1".to_string(),
            os: "SunOS 5.8".to_string(),
            cpu_speed: 1.0,
            n_cpus: 1,
            mem_kb: 131072,
        },
        role: EntityRole::Monitor,
    };
    assert_eq!(
        msg.to_document(),
        "<?xml version=\"1.0\" encoding=\"US-ASCII\"?>\
         <msg type=\"register\" role=\"monitor\">\
         <host name=\"ws1\"><ip>10.0.0.1</ip><os>SunOS 5.8</os>\
         <cpu-speed>1</cpu-speed><n-cpus>1</n-cpus><mem-kb>131072</mem-kb>\
         </host></msg>"
    );
}

#[test]
fn golden_heartbeat() {
    let mut metrics = Metrics::new();
    metrics.set("loadAvg1", 0.97);
    let msg = Message::Heartbeat {
        host: "ws2".to_string(),
        state: HostState::Busy,
        metrics,
        procs: vec![ProcReport {
            pid: 7,
            app: "test_tree".to_string(),
            start_time_s: 280.0,
            est_exec_time_s: 600.0,
        }],
    };
    assert_eq!(
        msg.to_document(),
        "<?xml version=\"1.0\" encoding=\"US-ASCII\"?>\
         <msg type=\"heartbeat\"><host>ws2</host><state>busy</state>\
         <metrics><metric name=\"loadAvg1\">0.97</metric></metrics>\
         <procs><proc pid=\"7\" app=\"test_tree\" start=\"280\" est=\"600\"/></procs>\
         </msg>"
    );
}

#[test]
fn golden_migration_command() {
    let msg = Message::MigrationCommand {
        host: "ws1".to_string(),
        pid: 7,
        dest: "ws4".to_string(),
        dest_port: 7801,
        schema: ApplicationSchema::compute("test_tree", 600.0),
    };
    assert_eq!(
        msg.to_document(),
        "<?xml version=\"1.0\" encoding=\"US-ASCII\"?>\
         <msg type=\"migration-command\"><host>ws1</host><pid>7</pid>\
         <dest>ws4</dest><dest-port>7801</dest-port>\
         <application-schema app=\"test_tree\">\
         <characteristic>computing</characteristic>\
         <est-comm-bytes>0</est-comm-bytes>\
         <requirements><mem-kb>0</mem-kb><disk-kb>0</disk-kb>\
         <min-cpu-speed>0</min-cpu-speed></requirements>\
         <est-exec-time-s>600</est-exec-time-s>\
         <history-runs>0</history-runs>\
         </application-schema></msg>"
    );
}

#[test]
fn golden_candidate_roundtrip() {
    assert_eq!(
        Message::CandidateReply {
            dest: Some("ws4".to_string())
        }
        .to_document(),
        "<?xml version=\"1.0\" encoding=\"US-ASCII\"?>\
         <msg type=\"candidate-reply\"><dest>ws4</dest></msg>"
    );
    assert_eq!(
        Message::CandidateReply { dest: None }.to_document(),
        "<?xml version=\"1.0\" encoding=\"US-ASCII\"?>\
         <msg type=\"candidate-reply\"><none/></msg>"
    );
}

#[test]
fn golden_documents_decode_back() {
    // Round-trip each golden string through the parser.
    for doc in [
        "<?xml version=\"1.0\" encoding=\"US-ASCII\"?><msg type=\"ack\"><ok>true</ok><info>done</info></msg>",
        "<?xml version=\"1.0\" encoding=\"US-ASCII\"?><msg type=\"candidate-reply\"><none/></msg>",
        "<?xml version=\"1.0\" encoding=\"US-ASCII\"?><msg type=\"migration-complete\"><pid>7</pid><from>ws1</from><to>ws4</to><migration-time-s>6.71</migration-time-s></msg>",
    ] {
        let msg = Message::decode(doc).expect(doc);
        assert_eq!(msg.to_document(), doc);
    }
}

#[test]
fn heartbeat_wire_size_matches_overhead_budget() {
    // Fig. 6 depends on heartbeats being sub-kilobyte: a typical heartbeat
    // with the full sensor bag must stay under 1.5 KiB.
    let mut metrics = Metrics::new();
    for key in [
        "processorStatus",
        "cpuUtil",
        "loadAvg1",
        "loadAvg5",
        "loadAvg15",
        "nproc",
        "ntStatIpv4:ESTABLISHED",
        "netTxKBps",
        "netRxKBps",
        "netFlowMBps",
        "memAvail",
        "virtMemAvail",
        "diskAvailKb",
    ] {
        metrics.set(key, 123.456789);
    }
    let msg = Message::Heartbeat {
        host: "ws63".to_string(),
        state: HostState::Free,
        metrics,
        procs: vec![],
    };
    let len = msg.to_document().len();
    assert!(len < 1536, "heartbeat is {len} bytes");
}
