//! # ars-rescheduler — the autonomic rescheduling runtime (the paper's core)
//!
//! "We present the design and implementation of a runtime support system,
//! which enables dynamic re-allocation of processes in a heterogeneous
//! distributed environment", built from:
//!
//! * [`monitor`] — the per-host monitor: sensor scripts, rule-based state
//!   decision, soft-state push heartbeats, overload confirmation windowing;
//! * [`commander`] — the per-host commander: temp-file destination handoff
//!   plus the user-defined migration signal;
//! * [`regcore`] — the sans-I/O registry/scheduler core: soft-state host
//!   table with leases, latest-completing-time process selection, the one
//!   first-fit destination search, command retransmit bookkeeping, and the
//!   hierarchical candidate escalation — pure inputs in, pure effects out;
//! * [`registry`] — the DES driver replaying core effects onto the
//!   simulation kernel;
//! * [`mod@deploy`] — helpers wiring the entities onto a simulated cluster;
//! * [`live`] — the same core replayed onto real localhost TCP sockets.

#![warn(missing_docs)]

pub mod adaptive;
pub mod commander;
pub mod deploy;
pub mod hooks;
pub mod live;
pub mod monitor;
pub mod regcore;
pub mod registry;

pub use adaptive::{AdaptiveConfig, AdaptiveConfirm};
pub use commander::Commander;
pub use deploy::{
    deploy, deploy_hierarchical, deploy_tree, DeployConfig, Deployment, HierarchicalDeployment,
    TreeDeployment,
};
pub use hooks::{DecisionRecord, ReschedHooks, ReschedLog, SchemaBook, CONTROL_TAG};
pub use monitor::{Monitor, MonitorConfig, StateSource};
pub use regcore::{
    CoreEffect, CoreInput, DomainHealth, Endpoint, HostEntry, Liveness, LogEffect, MalleableJob,
    RegistryConfig, RegistryCore, RegistryFt, SelectionPolicy, TimerId,
};
pub use registry::RegistryScheduler;
