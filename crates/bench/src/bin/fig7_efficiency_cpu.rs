//! Figure 7 — system efficiency: CPU utilization of the source and
//! destination workstations across an autonomic migration. The source's
//! utilization stays saturated until the migration (the CPU then serves
//! the additional task), and the destination's rises as the migrated
//! process resumes there.

use ars_bench::efficiency::{self, LOAD_START_S};
use ars_bench::print_series;

fn main() {
    let run = efficiency::run(42);
    let mut src = run.cpu_src.clone();
    let mut dst = run.cpu_dst.clone();
    src.set_name("cpu.source");
    dst.set_name("cpu.dest");
    print_series(
        "Figure 7 — CPU utilization across the migration (10 s samples)",
        &[&src, &dst],
    );

    let m = &run.migration;
    println!("\nmigration window:");
    println!(
        "  load injected t={LOAD_START_S}; decision t={:.1}; poll-point t={:.1}; resumed t={:.1}",
        run.decision.at.as_secs_f64(),
        m.pollpoint_at.as_secs_f64(),
        m.resumed_at.unwrap().as_secs_f64(),
    );
    println!(
        "  source busy before migration; destination takes over after t={:.1} (paper Figure 7 shape)",
        m.resumed_at.unwrap().as_secs_f64()
    );
}
