//! Shared side-channels: the application-schema book and the decision log.

use ars_simcore::SimTime;
use ars_xmlwire::ApplicationSchema;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::{Arc, Mutex, PoisonError};

/// The tag every rescheduler control message travels under.
pub const CONTROL_TAG: u32 = 0xC011;

/// Shared map of application name → schema ("initially provided by the
/// users and … updated according to the statistics of actual executions").
/// Monitors read it to fill heartbeat process reports; the registry reads
/// resource requirements from it. `Arc`-shared and `Send`: the same book
/// feeds the single-threaded simulation and the live TCP registry's worker
/// threads. A lock poisoned by a panicking holder is recovered from — the
/// book is a lookup cache, so the worst a recovered lock exposes is a
/// schema from before the panic.
#[derive(Clone, Default)]
pub struct SchemaBook(Arc<Mutex<HashMap<String, ApplicationSchema>>>);

impl SchemaBook {
    /// Empty book.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, ApplicationSchema>> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register or replace a schema.
    pub fn put(&self, schema: ApplicationSchema) {
        self.lock().insert(schema.app.clone(), schema);
    }

    /// Look up a schema by application name.
    pub fn get(&self, app: &str) -> Option<ApplicationSchema> {
        self.lock().get(app).cloned()
    }

    /// Fold a measured run into an app's schema (post-execution feedback).
    pub fn record_run(&self, app: &str, measured_s: f64) {
        if let Some(s) = self.lock().get_mut(app) {
            s.record_run(measured_s);
        }
    }
}

/// One scheduling decision made by a registry/scheduler.
#[derive(Debug, Clone)]
pub struct DecisionRecord {
    /// When the decision completed.
    pub at: SimTime,
    /// Overloaded host that triggered it.
    pub source: String,
    /// Chosen destination (None: no candidate anywhere).
    pub dest: Option<String>,
    /// Selected process (None when the host had nothing migratable).
    pub pid: Option<u64>,
    /// True when the candidate came from a parent registry (hierarchy).
    pub escalated: bool,
}

/// Shared decision log read by tests and the experiment harness.
#[derive(Debug, Clone, Default)]
pub struct ReschedLog {
    /// All decisions, in order.
    pub decisions: Vec<DecisionRecord>,
    /// Migration commands actually sent to commanders.
    pub commands_sent: usize,
    /// Command retransmits after a missed acknowledgement.
    pub command_retransmits: usize,
    /// Commands abandoned after exhausting retransmits (or rejected).
    pub commands_aborted: usize,
}

/// Cheap handle to the shared decision log.
#[derive(Clone, Default)]
pub struct ReschedHooks(pub Rc<RefCell<ReschedLog>>);

impl ReschedHooks {
    /// Fresh empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of decisions taken.
    pub fn decision_count(&self) -> usize {
        self.0.borrow().decisions.len()
    }

    /// The most recent decision.
    pub fn last_decision(&self) -> Option<DecisionRecord> {
        self.0.borrow().decisions.last().cloned()
    }

    /// Migration commands sent.
    pub fn commands_sent(&self) -> usize {
        self.0.borrow().commands_sent
    }

    /// Command retransmits after a missed acknowledgement.
    pub fn command_retransmits(&self) -> usize {
        self.0.borrow().command_retransmits
    }

    /// Commands abandoned after exhausting retransmits (or rejected).
    pub fn commands_aborted(&self) -> usize {
        self.0.borrow().commands_aborted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_book_roundtrip() {
        let book = SchemaBook::new();
        book.put(ApplicationSchema::compute("test_tree", 600.0));
        assert_eq!(book.get("test_tree").unwrap().est_exec_time_s, 600.0);
        assert!(book.get("other").is_none());
        book.record_run("test_tree", 300.0);
        assert!(book.get("test_tree").unwrap().est_exec_time_s < 600.0);
    }

    #[test]
    fn hooks_shared_and_empty() {
        let hooks = ReschedHooks::new();
        assert_eq!(hooks.decision_count(), 0);
        assert!(hooks.last_decision().is_none());
        let clone = hooks.clone();
        clone.0.borrow_mut().decisions.push(DecisionRecord {
            at: SimTime::ZERO,
            source: "ws1".to_string(),
            dest: Some("ws4".to_string()),
            pid: Some(7),
            escalated: false,
        });
        assert_eq!(hooks.decision_count(), 1);
    }
}
