//! Collective operations (`MPI_Barrier`, `MPI_Bcast`, `MPI_Reduce`,
//! `MPI_Allreduce`, `MPI_Gather`, `MPI_Scatter`).
//!
//! Collectives are poll-style sub-state-machines: a program creates one,
//! kicks it with [`step`](Bcast::step)`(…, None)`, forwards every subsequent
//! [`Wake`] to `step(…, Some(wake))`, and continues when it returns
//! [`Step::Done`]. Tree collectives use the classic binomial algorithm (the
//! shape LAM/MPICH use); `Gather`/`Scatter` are linear, which is accurate
//! enough at the paper's scales and documented as such.
//!
//! Data is a `Vec<f64>` (the only datatype the workloads need), reduced
//! element-wise.

use crate::p2p::{self, encode_f64s};
use crate::world::{CommId, Mpi, MpiError, Rank};
use ars_sim::{Ctx, Payload, Wake};

/// Progress of a collective.
#[derive(Debug, Clone, PartialEq)]
pub enum Step<T> {
    /// Still exchanging messages; keep forwarding wakes.
    Pending,
    /// Finished with this result.
    Done(T),
}

/// Element-wise reduction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum.
    Sum,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

impl ReduceOp {
    fn fold(self, acc: &mut [f64], other: &[f64]) {
        debug_assert_eq!(acc.len(), other.len(), "reduce length mismatch");
        for (a, b) in acc.iter_mut().zip(other) {
            *a = match self {
                ReduceOp::Sum => *a + b,
                ReduceOp::Max => a.max(*b),
                ReduceOp::Min => a.min(*b),
            };
        }
    }
}

/// Reserved user tags for collective phases.
mod tags {
    pub const BCAST: u32 = 2040;
    pub const REDUCE: u32 = 2041;
    pub const GATHER: u32 = 2042;
    pub const SCATTER: u32 = 2043;
    pub const BARRIER_UP: u32 = 2044;
    pub const BARRIER_DOWN: u32 = 2045;
}

/// Binomial-tree neighbourhood of `me` in a communicator of size `n`
/// rooted at `root`: the parent (None at the root) and the children, in
/// increasing-mask order.
fn binomial(n: u32, root: Rank, me: Rank) -> (Option<Rank>, Vec<Rank>) {
    let vrank = (me.0 + n - root.0) % n;
    let to_real = |v: u32| Rank((v + root.0) % n);
    let mut children = Vec::new();
    let mut mask = 1;
    let mut parent = None;
    while mask < n {
        if vrank & mask != 0 {
            parent = Some(to_real(vrank - mask));
            break;
        }
        if vrank + mask < n {
            children.push(to_real(vrank + mask));
        }
        mask <<= 1;
    }
    (parent, children)
}

// ---------------------------------------------------------------------------
// Bcast
// ---------------------------------------------------------------------------

enum BcastState {
    Init,
    WaitRecv,
    Sending(usize),
    Done,
}

/// Binomial broadcast of a `Vec<f64>` from `root`.
pub struct Bcast {
    comm: CommId,
    root: Rank,
    tag: u32,
    parent: Option<Rank>,
    /// Children in send order (largest subtree first, as MPICH sends).
    children: Vec<Rank>,
    data: Option<Vec<f64>>,
    state: BcastState,
}

impl Bcast {
    /// Create a broadcast; `data` must be `Some` at the root (and is
    /// ignored elsewhere). `tag` distinguishes phases when composed.
    pub fn new(
        mpi: &Mpi,
        ctx: &Ctx<'_>,
        comm: CommId,
        root: Rank,
        data: Option<Vec<f64>>,
        tag: u32,
    ) -> Result<Bcast, MpiError> {
        let me = mpi
            .task_of(ctx.pid())
            .ok_or(MpiError::Unbound(crate::world::TaskId(u64::MAX)))?;
        mpi.check_epoch(comm, me)?;
        let my_rank = mpi.rank_of(comm, me)?;
        let n = mpi.comm_size(comm)?;
        let (parent, mut children) = binomial(n, root, my_rank);
        children.reverse(); // send the largest subtree first
        Ok(Bcast {
            comm,
            root,
            tag,
            parent,
            children,
            data: if my_rank == root { data } else { None },
            state: BcastState::Init,
        })
    }

    /// A broadcast with the default tag.
    pub fn start(
        mpi: &Mpi,
        ctx: &mut Ctx<'_>,
        comm: CommId,
        root: Rank,
        data: Option<Vec<f64>>,
    ) -> Result<(Bcast, Step<Vec<f64>>), MpiError> {
        let mut b = Bcast::new(mpi, ctx, comm, root, data, tags::BCAST)?;
        let s = b.step(mpi, ctx, None)?;
        Ok((b, s))
    }

    /// Advance the machine (see module docs).
    pub fn step(
        &mut self,
        mpi: &Mpi,
        ctx: &mut Ctx<'_>,
        wake: Option<Wake>,
    ) -> Result<Step<Vec<f64>>, MpiError> {
        loop {
            match self.state {
                BcastState::Init => {
                    if let Some(parent) = self.parent {
                        p2p::recv(mpi, ctx, self.comm, parent, self.tag)?;
                        self.state = BcastState::WaitRecv;
                        return Ok(Step::Pending);
                    }
                    debug_assert!(self.data.is_some(), "root bcast without data");
                    self.state = BcastState::Sending(0);
                }
                BcastState::WaitRecv => match wake {
                    Some(Wake::Received(ref env)) => {
                        self.data =
                            Some(p2p::decode_f64s(env.payload.as_bytes().unwrap_or_default()));
                        self.state = BcastState::Sending(0);
                    }
                    _ => return Ok(Step::Pending),
                },
                BcastState::Sending(i) => {
                    if let Some(&child) = self.children.get(i) {
                        let data = self.data.as_ref().expect("data present when sending");
                        p2p::send(
                            mpi,
                            ctx,
                            self.comm,
                            child,
                            self.tag,
                            Payload::Bytes(encode_f64s(data)),
                            None,
                        )?;
                        self.state = BcastState::Sending(i + 1);
                        return Ok(Step::Pending);
                    }
                    self.state = BcastState::Done;
                    let _ = self.root;
                    return Ok(Step::Done(self.data.clone().unwrap_or_default()));
                }
                BcastState::Done => return Ok(Step::Done(self.data.clone().unwrap_or_default())),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reduce
// ---------------------------------------------------------------------------

enum ReduceState {
    Init,
    WaitChild(usize),
    SendParent,
    WaitSend,
    Done,
}

/// Binomial reduction of a `Vec<f64>` to `root`.
pub struct Reduce {
    comm: CommId,
    tag: u32,
    op: ReduceOp,
    parent: Option<Rank>,
    children: Vec<Rank>,
    acc: Vec<f64>,
    state: ReduceState,
}

impl Reduce {
    /// Create a reduction carrying this rank's `contribution`.
    pub fn new(
        mpi: &Mpi,
        ctx: &Ctx<'_>,
        comm: CommId,
        root: Rank,
        op: ReduceOp,
        contribution: Vec<f64>,
        tag: u32,
    ) -> Result<Reduce, MpiError> {
        let me = mpi
            .task_of(ctx.pid())
            .ok_or(MpiError::Unbound(crate::world::TaskId(u64::MAX)))?;
        mpi.check_epoch(comm, me)?;
        let my_rank = mpi.rank_of(comm, me)?;
        let n = mpi.comm_size(comm)?;
        let (parent, children) = binomial(n, root, my_rank);
        Ok(Reduce {
            comm,
            tag,
            op,
            parent,
            children,
            acc: contribution,
            state: ReduceState::Init,
        })
    }

    /// A reduction with the default tag.
    pub fn start(
        mpi: &Mpi,
        ctx: &mut Ctx<'_>,
        comm: CommId,
        root: Rank,
        op: ReduceOp,
        contribution: Vec<f64>,
    ) -> Result<(Reduce, Step<Vec<f64>>), MpiError> {
        let mut r = Reduce::new(mpi, ctx, comm, root, op, contribution, tags::REDUCE)?;
        let s = r.step(mpi, ctx, None)?;
        Ok((r, s))
    }

    /// Advance the machine. The returned vector is the reduction result at
    /// the root and this rank's partial elsewhere.
    pub fn step(
        &mut self,
        mpi: &Mpi,
        ctx: &mut Ctx<'_>,
        wake: Option<Wake>,
    ) -> Result<Step<Vec<f64>>, MpiError> {
        loop {
            match self.state {
                ReduceState::Init => {
                    if let Some(&child) = self.children.first() {
                        p2p::recv(mpi, ctx, self.comm, child, self.tag)?;
                        self.state = ReduceState::WaitChild(0);
                        return Ok(Step::Pending);
                    }
                    self.state = ReduceState::SendParent;
                }
                ReduceState::WaitChild(i) => match wake {
                    Some(Wake::Received(ref env)) => {
                        let data = p2p::decode_f64s(env.payload.as_bytes().unwrap_or_default());
                        self.op.fold(&mut self.acc, &data);
                        let next = i + 1;
                        if let Some(&child) = self.children.get(next) {
                            p2p::recv(mpi, ctx, self.comm, child, self.tag)?;
                            self.state = ReduceState::WaitChild(next);
                            return Ok(Step::Pending);
                        }
                        self.state = ReduceState::SendParent;
                    }
                    _ => return Ok(Step::Pending),
                },
                ReduceState::SendParent => {
                    if let Some(parent) = self.parent {
                        p2p::send(
                            mpi,
                            ctx,
                            self.comm,
                            parent,
                            self.tag,
                            Payload::Bytes(encode_f64s(&self.acc)),
                            None,
                        )?;
                        self.state = ReduceState::WaitSend;
                        return Ok(Step::Pending);
                    }
                    self.state = ReduceState::Done;
                    return Ok(Step::Done(self.acc.clone()));
                }
                ReduceState::WaitSend => match wake {
                    Some(Wake::OpDone) => {
                        self.state = ReduceState::Done;
                        return Ok(Step::Done(self.acc.clone()));
                    }
                    _ => return Ok(Step::Pending),
                },
                ReduceState::Done => return Ok(Step::Done(self.acc.clone())),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Allreduce / Barrier
// ---------------------------------------------------------------------------

enum TwoPhase {
    Up(Reduce),
    Down(Bcast),
}

/// Reduce-to-0 followed by broadcast-from-0.
pub struct Allreduce {
    comm: CommId,
    phase: TwoPhase,
    down_tag: u32,
}

impl Allreduce {
    /// Start an all-reduce.
    pub fn start(
        mpi: &Mpi,
        ctx: &mut Ctx<'_>,
        comm: CommId,
        op: ReduceOp,
        contribution: Vec<f64>,
    ) -> Result<(Allreduce, Step<Vec<f64>>), MpiError> {
        Self::start_tagged(
            mpi,
            ctx,
            comm,
            op,
            contribution,
            tags::BARRIER_UP,
            tags::BARRIER_DOWN,
        )
    }

    fn start_tagged(
        mpi: &Mpi,
        ctx: &mut Ctx<'_>,
        comm: CommId,
        op: ReduceOp,
        contribution: Vec<f64>,
        up_tag: u32,
        down_tag: u32,
    ) -> Result<(Allreduce, Step<Vec<f64>>), MpiError> {
        let mut reduce = Reduce::new(mpi, ctx, comm, Rank(0), op, contribution, up_tag)?;
        let step = reduce.step(mpi, ctx, None)?;
        let mut ar = Allreduce {
            comm,
            phase: TwoPhase::Up(reduce),
            down_tag,
        };
        match step {
            Step::Pending => Ok((ar, Step::Pending)),
            Step::Done(partial) => {
                let s = ar.enter_down(mpi, ctx, partial)?;
                Ok((ar, s))
            }
        }
    }

    fn enter_down(
        &mut self,
        mpi: &Mpi,
        ctx: &mut Ctx<'_>,
        partial: Vec<f64>,
    ) -> Result<Step<Vec<f64>>, MpiError> {
        let me = mpi
            .task_of(ctx.pid())
            .ok_or(MpiError::Unbound(crate::world::TaskId(u64::MAX)))?;
        let my_rank = mpi.rank_of(self.comm, me)?;
        let data = if my_rank == Rank(0) {
            Some(partial)
        } else {
            None
        };
        let mut bcast = Bcast::new(mpi, ctx, self.comm, Rank(0), data, self.down_tag)?;
        let s = bcast.step(mpi, ctx, None)?;
        self.phase = TwoPhase::Down(bcast);
        Ok(s)
    }

    /// Advance the machine.
    pub fn step(
        &mut self,
        mpi: &Mpi,
        ctx: &mut Ctx<'_>,
        wake: Option<Wake>,
    ) -> Result<Step<Vec<f64>>, MpiError> {
        match &mut self.phase {
            TwoPhase::Up(reduce) => match reduce.step(mpi, ctx, wake)? {
                Step::Pending => Ok(Step::Pending),
                Step::Done(partial) => self.enter_down(mpi, ctx, partial),
            },
            TwoPhase::Down(bcast) => bcast.step(mpi, ctx, wake),
        }
    }
}

/// `MPI_Barrier`: an all-reduce of nothing.
pub struct Barrier(Allreduce);

impl Barrier {
    /// Start a barrier.
    pub fn start(
        mpi: &Mpi,
        ctx: &mut Ctx<'_>,
        comm: CommId,
    ) -> Result<(Barrier, Step<()>), MpiError> {
        let (ar, s) = Allreduce::start(mpi, ctx, comm, ReduceOp::Sum, Vec::new())?;
        Ok((Barrier(ar), strip(s)))
    }

    /// Advance the machine.
    pub fn step(
        &mut self,
        mpi: &Mpi,
        ctx: &mut Ctx<'_>,
        wake: Option<Wake>,
    ) -> Result<Step<()>, MpiError> {
        Ok(strip(self.0.step(mpi, ctx, wake)?))
    }
}

fn strip(s: Step<Vec<f64>>) -> Step<()> {
    match s {
        Step::Pending => Step::Pending,
        Step::Done(_) => Step::Done(()),
    }
}

// ---------------------------------------------------------------------------
// Gather / Scatter (linear)
// ---------------------------------------------------------------------------

enum GatherState {
    RootWaiting(u32),
    LeafSending,
    Done,
}

/// Linear gather of one `Vec<f64>` per rank to the root, concatenated in
/// rank order.
pub struct Gather {
    comm: CommId,
    root: Rank,
    my_rank: Rank,
    n: u32,
    parts: Vec<Option<Vec<f64>>>,
    state: GatherState,
}

impl Gather {
    /// Start a gather carrying this rank's `contribution`.
    pub fn start(
        mpi: &Mpi,
        ctx: &mut Ctx<'_>,
        comm: CommId,
        root: Rank,
        contribution: Vec<f64>,
    ) -> Result<(Gather, Step<Vec<f64>>), MpiError> {
        let me = mpi
            .task_of(ctx.pid())
            .ok_or(MpiError::Unbound(crate::world::TaskId(u64::MAX)))?;
        mpi.check_epoch(comm, me)?;
        let my_rank = mpi.rank_of(comm, me)?;
        let n = mpi.comm_size(comm)?;
        let mut g = Gather {
            comm,
            root,
            my_rank,
            n,
            parts: vec![None; n as usize],
            state: GatherState::Done,
        };
        if my_rank == root {
            g.parts[my_rank.0 as usize] = Some(contribution);
            if n == 1 {
                let all = g.concat();
                return Ok((g, Step::Done(all)));
            }
            let first = g.next_pending_rank(0).expect("n > 1");
            p2p::recv(mpi, ctx, comm, Rank(first), tags::GATHER)?;
            g.state = GatherState::RootWaiting(first);
            Ok((g, Step::Pending))
        } else {
            p2p::send(
                mpi,
                ctx,
                comm,
                root,
                tags::GATHER,
                Payload::Bytes(encode_f64s(&contribution)),
                None,
            )?;
            g.state = GatherState::LeafSending;
            Ok((g, Step::Pending))
        }
    }

    fn next_pending_rank(&self, from: u32) -> Option<u32> {
        (from..self.n).find(|&r| r != self.root.0 && self.parts[r as usize].is_none())
    }

    fn concat(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for p in self.parts.iter().flatten() {
            out.extend_from_slice(p);
        }
        out
    }

    /// Advance the machine. The root gets the concatenation; leaves get an
    /// empty vector.
    pub fn step(
        &mut self,
        mpi: &Mpi,
        ctx: &mut Ctx<'_>,
        wake: Option<Wake>,
    ) -> Result<Step<Vec<f64>>, MpiError> {
        match self.state {
            GatherState::RootWaiting(expected) => match wake {
                Some(Wake::Received(ref env)) => {
                    let data = p2p::decode_f64s(env.payload.as_bytes().unwrap_or_default());
                    self.parts[expected as usize] = Some(data);
                    match self.next_pending_rank(0) {
                        Some(next) => {
                            p2p::recv(mpi, ctx, self.comm, Rank(next), tags::GATHER)?;
                            self.state = GatherState::RootWaiting(next);
                            Ok(Step::Pending)
                        }
                        None => {
                            self.state = GatherState::Done;
                            Ok(Step::Done(self.concat()))
                        }
                    }
                }
                _ => Ok(Step::Pending),
            },
            GatherState::LeafSending => match wake {
                Some(Wake::OpDone) => {
                    self.state = GatherState::Done;
                    Ok(Step::Done(Vec::new()))
                }
                _ => Ok(Step::Pending),
            },
            GatherState::Done => Ok(Step::Done(if self.my_rank == self.root {
                self.concat()
            } else {
                Vec::new()
            })),
        }
    }
}

enum ScatterState {
    RootSending(u32),
    LeafWaiting,
    Done(Vec<f64>),
}

/// Linear scatter: the root splits `data` into `n` equal chunks; rank `i`
/// receives chunk `i`.
pub struct Scatter {
    comm: CommId,
    root: Rank,
    chunks: Vec<Vec<f64>>,
    state: ScatterState,
}

impl Scatter {
    /// Start a scatter; `data` is required at the root and must divide
    /// evenly by the communicator size.
    pub fn start(
        mpi: &Mpi,
        ctx: &mut Ctx<'_>,
        comm: CommId,
        root: Rank,
        data: Option<Vec<f64>>,
    ) -> Result<(Scatter, Step<Vec<f64>>), MpiError> {
        let me = mpi
            .task_of(ctx.pid())
            .ok_or(MpiError::Unbound(crate::world::TaskId(u64::MAX)))?;
        mpi.check_epoch(comm, me)?;
        let my_rank = mpi.rank_of(comm, me)?;
        let n = mpi.comm_size(comm)?;
        if my_rank == root {
            let data = data.expect("root scatter without data");
            assert_eq!(
                data.len() % n as usize,
                0,
                "scatter data must divide evenly"
            );
            let chunk = data.len() / n as usize;
            let chunks: Vec<Vec<f64>> = if chunk == 0 {
                vec![Vec::new(); n as usize]
            } else {
                data.chunks(chunk).map(<[f64]>::to_vec).collect()
            };
            let mut s = Scatter {
                comm,
                root,
                chunks,
                state: ScatterState::RootSending(0),
            };
            let step = s.advance_root(mpi, ctx)?;
            Ok((s, step))
        } else {
            p2p::recv(mpi, ctx, comm, root, tags::SCATTER)?;
            Ok((
                Scatter {
                    comm,
                    root,
                    chunks: Vec::new(),
                    state: ScatterState::LeafWaiting,
                },
                Step::Pending,
            ))
        }
    }

    fn advance_root(&mut self, mpi: &Mpi, ctx: &mut Ctx<'_>) -> Result<Step<Vec<f64>>, MpiError> {
        let ScatterState::RootSending(mut i) = self.state else {
            unreachable!("advance_root outside RootSending");
        };
        let n = self.chunks.len() as u32;
        while i < n && Rank(i) == self.root {
            i += 1;
        }
        if i < n {
            p2p::send(
                mpi,
                ctx,
                self.comm,
                Rank(i),
                tags::SCATTER,
                Payload::Bytes(encode_f64s(&self.chunks[i as usize])),
                None,
            )?;
            self.state = ScatterState::RootSending(i + 1);
            Ok(Step::Pending)
        } else {
            let own = self.chunks[self.root.0 as usize].clone();
            self.state = ScatterState::Done(own.clone());
            Ok(Step::Done(own))
        }
    }

    /// Advance the machine; each rank finishes with its own chunk.
    pub fn step(
        &mut self,
        mpi: &Mpi,
        ctx: &mut Ctx<'_>,
        wake: Option<Wake>,
    ) -> Result<Step<Vec<f64>>, MpiError> {
        match &self.state {
            ScatterState::RootSending(_) => match wake {
                Some(Wake::OpDone) => self.advance_root(mpi, ctx),
                _ => Ok(Step::Pending),
            },
            ScatterState::LeafWaiting => match wake {
                Some(Wake::Received(env)) => {
                    let data = p2p::decode_f64s(env.payload.as_bytes().unwrap_or_default());
                    self.state = ScatterState::Done(data.clone());
                    Ok(Step::Done(data))
                }
                _ => Ok(Step::Pending),
            },
            ScatterState::Done(d) => Ok(Step::Done(d.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_tree_shape_root_zero() {
        // n=8, root=0: 0 -> {1,2,4}; 1 -> {3,5}? No: binomial children of
        // vrank v are v+mask for masks below v's lowest set bit.
        let (p, c) = binomial(8, Rank(0), Rank(0));
        assert_eq!(p, None);
        assert_eq!(c, vec![Rank(1), Rank(2), Rank(4)]);
        let (p, c) = binomial(8, Rank(0), Rank(1));
        assert_eq!(p, Some(Rank(0)));
        assert_eq!(c, vec![]);
        let (p, c) = binomial(8, Rank(0), Rank(2));
        assert_eq!(p, Some(Rank(0)));
        assert_eq!(c, vec![Rank(3)]);
        let (p, c) = binomial(8, Rank(0), Rank(4));
        assert_eq!(p, Some(Rank(0)));
        assert_eq!(c, vec![Rank(5), Rank(6)]);
        let (p, c) = binomial(8, Rank(0), Rank(6));
        assert_eq!(p, Some(Rank(4)));
        assert_eq!(c, vec![Rank(7)]);
    }

    #[test]
    fn binomial_tree_rotates_with_root() {
        let (p, c) = binomial(4, Rank(2), Rank(2));
        assert_eq!(p, None);
        assert_eq!(c, vec![Rank(3), Rank(0)]);
        let (p, _) = binomial(4, Rank(2), Rank(0));
        assert_eq!(p, Some(Rank(2)));
    }

    #[test]
    fn every_nonroot_has_a_parent_and_trees_are_consistent() {
        for n in 1..=33u32 {
            for root in [0, 1, n / 2, n - 1] {
                let root = Rank(root % n);
                let mut child_count = 0;
                for r in 0..n {
                    let (p, c) = binomial(n, root, Rank(r));
                    child_count += c.len();
                    if Rank(r) == root {
                        assert_eq!(p, None);
                    } else {
                        let parent = p.expect("non-root has parent");
                        // Parent lists r among its children.
                        let (_, pc) = binomial(n, root, parent);
                        assert!(pc.contains(&Rank(r)), "n={n} root={root:?} r={r}");
                    }
                }
                assert_eq!(child_count as u32, n - 1);
            }
        }
    }

    #[test]
    fn reduce_op_folds() {
        let mut acc = vec![1.0, 5.0, -2.0];
        ReduceOp::Sum.fold(&mut acc, &[1.0, 1.0, 1.0]);
        assert_eq!(acc, vec![2.0, 6.0, -1.0]);
        ReduceOp::Max.fold(&mut acc, &[0.0, 10.0, 0.0]);
        assert_eq!(acc, vec![2.0, 10.0, 0.0]);
        ReduceOp::Min.fold(&mut acc, &[5.0, 5.0, -5.0]);
        assert_eq!(acc, vec![2.0, 5.0, -5.0]);
    }
}
