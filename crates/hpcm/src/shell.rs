//! The HPCM migration shell.
//!
//! [`HpcmShell`] wraps a [`MigratableApp`] as a kernel [`Program`] and
//! implements the paper's migration protocol:
//!
//! 1. the commander posts the user-defined signal and writes the
//!    destination into a temp file ([`dest_file_path`]);
//! 2. at the application's next poll-point the shell reads the destination,
//!    dynamically creates the *initialized process* there (a restoring
//!    shell, paying the LAM dynamic-process-management cost unless
//!    pre-initialized);
//! 3. the execution + memory state is captured ([`MigratableApp::save`])
//!    and transferred: the eager part first, the bulk remainder streamed
//!    lazily;
//! 4. communication state is transferred: the task's pid binding is
//!    re-pointed, a kernel forwarding entry reroutes in-flight messages,
//!    and queued mailbox messages are re-sent to the new pid;
//! 5. the destination restores, resumes the application *before the lazy
//!    stream finishes*, and records the timeline in the shared log.

use crate::state::{
    dest_file_path, AppStatus, CompletionRecord, HpcmConfig, HpcmHooks, MigratableApp,
    MigrationRecord, SavedState, MIGRATE_SIGNAL, TAG_HPCM_EAGER, TAG_HPCM_LAZY,
};
use ars_mpisim::Mpi;
use ars_sim::{Ctx, Payload, Pid, Program, RecvFilter, SpawnOpts, TraceKind, Wake};
use ars_simcore::SimDuration;

enum Mode<A> {
    /// Driving the application.
    Running { app: A },
    /// Source side: eager and lazy sends queued; counting completions.
    SourceSending {
        /// The source keeps its (already captured) state until it exits.
        _app: A,
        child: Pid,
        sends_left: u8,
    },
    /// Destination side: waiting for the DPM init sleep / eager state.
    Restoring { waited_init: bool },
    /// Destination side: paying the restoration cost.
    RestoreCompute { app: Option<A> },
    /// Terminal.
    Done,
}

/// Migration-enabled process wrapper (see module docs).
pub struct HpcmShell<A: MigratableApp> {
    mode: Mode<A>,
    cfg: HpcmConfig,
    mpi: Option<Mpi>,
    hooks: HpcmHooks,
    /// Lazy remainder not yet confirmed received (destination side).
    pending_lazy: bool,
}

impl<A: MigratableApp> HpcmShell<A> {
    /// Wrap a fresh application.
    pub fn launch(app: A, cfg: HpcmConfig, mpi: Option<Mpi>, hooks: HpcmHooks) -> Self {
        HpcmShell {
            mode: Mode::Running { app },
            cfg,
            mpi,
            hooks,
            pending_lazy: false,
        }
    }

    /// The restoring (destination) side, created by the source's shell.
    fn restoring(cfg: HpcmConfig, mpi: Option<Mpi>, hooks: HpcmHooks) -> Self {
        HpcmShell {
            mode: Mode::Restoring { waited_init: false },
            cfg,
            mpi,
            hooks,
            pending_lazy: true,
        }
    }

    /// Spawn options matching an app's schema.
    fn spawn_opts(app: &A) -> SpawnOpts {
        let schema = app.schema();
        SpawnOpts::named(app.app_name())
            .migratable()
            .with_mem(schema.requirements.mem_kb, schema.requirements.mem_kb)
    }

    /// Spawn a wrapped app on a host (convenience for harnesses).
    pub fn spawn_on(
        sim: &mut ars_sim::Sim,
        host: ars_sim::HostId,
        app: A,
        cfg: HpcmConfig,
        mpi: Option<Mpi>,
        hooks: HpcmHooks,
    ) -> Pid {
        let opts = Self::spawn_opts(&app);
        let mpi_handle = mpi.clone();
        let pid = sim.spawn(host, Box::new(Self::launch(app, cfg, mpi, hooks)), opts);
        if let Some(m) = mpi_handle {
            // Register the task identity at launch (MPI_Init).
            if m.task_of(pid).is_none() {
                m.bind_new_task(pid);
            }
        }
        pid
    }

    fn drive_app(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
        let Mode::Running { app } = &mut self.mode else {
            return;
        };
        let status = app.step(ctx, wake);
        match status {
            AppStatus::Finished => {
                self.hooks
                    .0
                    .borrow_mut()
                    .completions
                    .push(CompletionRecord {
                        app: app.app_name(),
                        pid: ctx.pid(),
                        host: ctx.host_id(),
                        finished_at: ctx.now(),
                        work_done: app.progress(),
                        digest: app.result_digest(),
                    });
                ctx.trace(
                    TraceKind::Custom,
                    format!("{} finished on h{}", app.app_name(), ctx.host_id().0),
                );
                self.mode = Mode::Done;
                ctx.exit();
            }
            AppStatus::Running => {
                // Poll-point: act on a pending migration signal.
                if ctx.has_signal() && app.migration_safe() {
                    let sig = ctx.take_signal().expect("signal present");
                    if sig == MIGRATE_SIGNAL {
                        self.begin_migration(ctx);
                    }
                }
            }
        }
    }

    fn begin_migration(&mut self, ctx: &mut Ctx<'_>) {
        let Mode::Running { app } = std::mem::replace(&mut self.mode, Mode::Done) else {
            return;
        };
        let dest_name = match ctx.read_file(&dest_file_path(ctx.pid())) {
            Some(d) => d,
            None => {
                // No destination written: spurious signal; keep running.
                ctx.trace(TraceKind::Migration, "signal without destination file");
                self.mode = Mode::Running { app };
                return;
            }
        };
        let dest_host = dest_name.split(':').next().unwrap_or(&dest_name);
        let Some(dest) = ctx.host_id_by_name(dest_host) else {
            ctx.trace(
                TraceKind::Migration,
                format!("unknown destination {dest_host:?}"),
            );
            self.mode = Mode::Running { app };
            return;
        };
        ctx.remove_file(&dest_file_path(ctx.pid()));

        // Roll back to this poll-point: drop ops the app just queued.
        ctx.clear_pending_ops();
        let me = ctx.pid();

        // Capture execution + memory state.
        let SavedState { eager, lazy_bytes } = app.save();
        let eager_bytes = eager.len() as u64;

        // Dynamically create the initialized process on the destination.
        let child = ctx.spawn(
            dest,
            Box::new(Self::restoring(
                self.cfg.clone(),
                self.mpi.clone(),
                self.hooks.clone(),
            )),
            Self::spawn_opts(&app),
        );
        // Communication-state transfer starts now: the task identity points
        // at the destination immediately (the restored process may resume —
        // and be addressed — before the lazy stream completes), while
        // messages already in flight to the old pid are forwarded when the
        // source winds down.
        if let Some(mpi) = &self.mpi {
            if let Some(task) = mpi.task_of(me) {
                let _ = mpi.rebind(task, child);
            }
        }
        ctx.trace(
            TraceKind::Migration,
            format!(
                "pollpoint: {} h{} -> h{} ({} eager + {} lazy bytes)",
                app.app_name(),
                ctx.host_id().0,
                dest.0,
                eager_bytes,
                lazy_bytes
            ),
        );

        // Transfer the state: eager first, bulk remainder streamed after.
        ctx.send(child, TAG_HPCM_EAGER, Payload::Bytes(eager));
        let mut sends_left = 1;
        if lazy_bytes > 0 {
            ctx.send_sized(child, TAG_HPCM_LAZY, Payload::Empty, lazy_bytes);
            sends_left += 1;
        }

        // Publish the record now: the destination resumes (and stamps its
        // phases) before the lazy stream leaves the source.
        self.hooks.0.borrow_mut().migrations.push(MigrationRecord {
            pid_old: ctx.pid(),
            pid_new: child,
            from: ctx.host_id(),
            to: dest,
            app: app.app_name(),
            pollpoint_at: ctx.now(),
            spawned_at: ctx.now(),
            eager_sent_at: ctx.now(), // updated when the send completes
            resumed_at: None,
            lazy_done_at: None,
            eager_bytes,
            lazy_bytes,
        });
        self.mode = Mode::SourceSending {
            _app: app,
            child,
            sends_left,
        };
    }

    fn finish_source(&mut self, ctx: &mut Ctx<'_>) {
        let Mode::SourceSending { child, .. } = std::mem::replace(&mut self.mode, Mode::Done)
        else {
            return;
        };
        // Finish communication-state transfer: re-route in-flight
        // messages and re-send anything already queued here.
        ctx.set_forwarding(ctx.pid(), child);
        for env in ctx.drain_mailbox() {
            ctx.forward_envelope(env, child);
        }
        ctx.trace(TraceKind::Migration, "source state sent; exiting");
        ctx.exit();
    }
}

impl<A: MigratableApp> Program for HpcmShell<A> {
    fn on_wake(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
        match &mut self.mode {
            Mode::Running { .. } => {
                // The lazy tail of our own inbound migration may still be
                // streaming; its arrival is a protocol message, not an
                // application one. It may come in as a wake (if we were
                // passive) or sit in the mailbox (if we were computing) —
                // check both at every poll-point.
                if self.pending_lazy {
                    let direct = matches!(&wake, Wake::Received(env) if env.tag == TAG_HPCM_LAZY);
                    let queued =
                        !direct && ctx.take_message(RecvFilter::tag(TAG_HPCM_LAZY)).is_some();
                    if direct || queued {
                        self.pending_lazy = false;
                        let now = ctx.now();
                        let mut log = self.hooks.0.borrow_mut();
                        if let Some(m) = log
                            .migrations
                            .iter_mut()
                            .rev()
                            .find(|m| m.pid_new == ctx.pid())
                        {
                            m.lazy_done_at = Some(now);
                        }
                        drop(log);
                        ctx.trace(TraceKind::Migration, "lazy state fully received");
                        if direct {
                            return;
                        }
                    }
                }
                self.drive_app(ctx, wake);
            }
            Mode::SourceSending { sends_left, .. } => {
                if let Wake::OpDone = wake {
                    *sends_left -= 1;
                    let me = ctx.pid();
                    let now = ctx.now();
                    {
                        let mut log = self.hooks.0.borrow_mut();
                        if let Some(m) = log.migrations.iter_mut().rev().find(|m| m.pid_old == me) {
                            if m.eager_sent_at == m.pollpoint_at {
                                m.eager_sent_at = now;
                            }
                        }
                    }
                    if *sends_left == 0 {
                        self.finish_source(ctx);
                    }
                }
            }
            Mode::Restoring { waited_init } => match wake {
                Wake::Started => {
                    if self.cfg.pre_initialized || self.cfg.dpm_init_cost.is_zero() {
                        *waited_init = true;
                        ctx.recv(RecvFilter::tag(TAG_HPCM_EAGER));
                    } else {
                        ctx.sleep(self.cfg.dpm_init_cost);
                    }
                }
                Wake::OpDone if !*waited_init => {
                    *waited_init = true;
                    ctx.recv(RecvFilter::tag(TAG_HPCM_EAGER));
                }
                Wake::Received(env) if env.tag == TAG_HPCM_EAGER => {
                    let bytes = env.payload.as_bytes().unwrap_or_default();
                    let app = A::restore(bytes, self.mpi.as_ref());
                    let restore_work = self.cfg.restore_fixed
                        + SimDuration::from_secs_f64(bytes.len() as f64 / self.cfg.restore_rate);
                    ctx.trace(
                        TraceKind::Migration,
                        format!("restoring {} ({} bytes)", app.app_name(), bytes.len()),
                    );
                    // Restoration burns CPU on the destination.
                    ctx.compute(restore_work.as_secs_f64());
                    self.mode = Mode::RestoreCompute { app: Some(app) };
                }
                _ => {}
            },
            Mode::RestoreCompute { app } => {
                if let Wake::OpDone = wake {
                    let app = app.take().expect("app restored");
                    let now = ctx.now();
                    {
                        let mut log = self.hooks.0.borrow_mut();
                        if let Some(m) = log
                            .migrations
                            .iter_mut()
                            .rev()
                            .find(|m| m.pid_new == ctx.pid())
                        {
                            m.resumed_at = Some(now);
                        }
                    }
                    ctx.trace(TraceKind::Migration, "destination resumed execution");
                    self.mode = Mode::Running { app };
                    // Resume: the app re-issues ops for its current phase.
                    self.drive_app(ctx, Wake::Started);
                }
            }
            Mode::Done => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
