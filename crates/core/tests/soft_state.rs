//! Registry soft-state edges: lease expiry, re-registration restoring
//! first-fit eligibility, and the missed-heartbeat failure detector's
//! suspect → unavailable → free round-trip when a monitor's pushes stop
//! and later resume.

use ars_apps::{Spinner, TestTree, TestTreeConfig};
use ars_hpcm::{HpcmConfig, HpcmHooks, HpcmShell, MigratableApp};
use ars_rescheduler::{
    deploy, DeployConfig, Liveness, Monitor, MonitorConfig, RegistryScheduler, StateSource,
};
use ars_rules::{HostState, MonitoringFrequency, Policy};
use ars_sim::{Fault, HostId, Pid, Sim, SimConfig, SpawnOpts};
use ars_simcore::{SimDuration, SimTime};
use ars_simhost::HostConfig;
use ars_sysinfo::Ambient;
use ars_xmlwire::ResourceRequirements;

fn t(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

fn cluster(n: usize) -> Sim {
    Sim::new(
        (0..n)
            .map(|i| HostConfig::named(format!("ws{i}")))
            .collect(),
        SimConfig {
            trace: true,
            ..SimConfig::default()
        },
    )
}

struct Killer {
    victim: Pid,
}

impl ars_sim::Program for Killer {
    fn on_wake(&mut self, ctx: &mut ars_sim::Ctx<'_>, wake: ars_sim::Wake) {
        if let ars_sim::Wake::Started = wake {
            ctx.kill(self.victim);
            ctx.exit();
        }
    }
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Observe a host's (liveness, effective state) through the registry's
/// internal table.
fn host_view(sim: &mut Sim, registry: Pid, host: &str) -> (Liveness, HostState) {
    let now = sim.now();
    let reg = sim
        .program_mut(registry)
        .expect("registry alive")
        .as_any()
        .downcast_mut::<RegistryScheduler>()
        .unwrap();
    let entry = reg
        .entries()
        .iter()
        .find(|e| e.name.as_ref() == host)
        .expect("registered");
    let lease = SimDuration::from_secs(35); // DeployConfig::default().lease
    (
        entry.liveness(now, lease),
        entry.effective_state(now, lease),
    )
}

fn first_fit_excluding(sim: &mut Sim, registry: Pid, exclude: &str) -> Option<String> {
    let now = sim.now();
    let reg = sim
        .program_mut(registry)
        .expect("registry alive")
        .as_any()
        .downcast_mut::<RegistryScheduler>()
        .unwrap();
    reg.core()
        .destination_for(&ResourceRequirements::default(), exclude, now)
        .map(|e| e.name.to_string())
}

#[test]
fn stalled_pushes_walk_suspect_unavailable_and_back_to_free() {
    let mut sim = cluster(3);
    let dep = deploy(
        &mut sim,
        HostId(0),
        &[HostId(1), HostId(2)],
        DeployConfig::default(),
    );
    // Let a few heartbeats land so the registry learns ws2's push period.
    sim.run_until(t(40.0));
    assert_eq!(
        host_view(&mut sim, dep.registry, "ws2"),
        (Liveness::Alive, HostState::Free)
    );
    assert_eq!(
        first_fit_excluding(&mut sim, dep.registry, "ws1").as_deref(),
        Some("ws2")
    );

    // Freeze ws2's outbound messages for 65 s: pushes stop arriving.
    sim.schedule_fault(
        t(40.0),
        Fault::MonitorStall {
            host: 2,
            duration: SimDuration::from_secs(65),
        },
    );

    // The last heartbeat to get through left ws2 just before t=31; by
    // t=55 that is ~24 s of silence ≈ 2 missed 10 s beats: suspect, lease
    // still valid — but already excluded as a migration destination.
    sim.run_until(t(55.0));
    let (live, state) = host_view(&mut sim, dep.registry, "ws2");
    assert_eq!(live, Liveness::Suspect);
    assert_eq!(state, HostState::Free, "lease not yet expired");
    assert_eq!(
        first_fit_excluding(&mut sim, dep.registry, "ws1"),
        None,
        "suspect host is not offered ahead of lease expiry"
    );

    // Past the lease: down and unavailable.
    sim.run_until(t(80.0));
    assert_eq!(
        host_view(&mut sim, dep.registry, "ws2"),
        (Liveness::Down, HostState::Unavailable)
    );

    // Stall ends at t=105; the held heartbeats flush and fresh ones resume:
    // full round-trip back to an eligible Free entry.
    sim.run_until(t(120.0));
    assert_eq!(
        host_view(&mut sim, dep.registry, "ws2"),
        (Liveness::Alive, HostState::Free)
    );
    assert_eq!(
        first_fit_excluding(&mut sim, dep.registry, "ws1").as_deref(),
        Some("ws2")
    );
}

#[test]
fn re_registration_after_expiry_restores_first_fit_eligibility() {
    let mut sim = cluster(3);
    let dep = deploy(
        &mut sim,
        HostId(0),
        &[HostId(1), HostId(2)],
        DeployConfig {
            overload_confirm: SimDuration::from_secs(40),
            ..DeployConfig::default()
        },
    );
    let app = TestTree::new(TestTreeConfig {
        trees: 8,
        levels: 13,
        node_cost_build: 2e-3,
        node_cost_sort: 3e-3,
        node_cost_sum: 1e-3,
        chunk_nodes: 1024,
        rss_kb: 24_576,
        seed: 17,
    });
    dep.schemas.put(MigratableApp::schema(&app));
    let hpcm = HpcmHooks::new();
    HpcmShell::spawn_on(
        &mut sim,
        HostId(1),
        app,
        HpcmConfig::default(),
        None,
        hpcm.clone(),
    );

    // ws2's monitor dies; its lease expires and the host drops out of the
    // destination search.
    sim.run_until(t(30.0));
    sim.spawn(
        HostId(0),
        Box::new(Killer {
            victim: dep.monitors[1],
        }),
        SpawnOpts::named("kill"),
    );
    sim.run_until(t(90.0));
    assert_eq!(
        host_view(&mut sim, dep.registry, "ws2").1,
        HostState::Unavailable
    );

    // Overload ws1 while no destination exists: decisions happen but no
    // migration is possible.
    for _ in 0..2 {
        sim.spawn(
            HostId(1),
            Box::new(Spinner::default()),
            SpawnOpts::named("hog"),
        );
    }
    sim.run_until(t(400.0));
    assert_eq!(hpcm.migration_count(), 0, "no eligible destination");

    // A replacement monitor re-registers ws2: the host must become
    // first-fit eligible again and the stuck migration goes through.
    sim.spawn(
        HostId(2),
        Box::new(Monitor::new(
            MonitorConfig {
                registry: dep.registry,
                state_source: StateSource::Policy(Policy::paper_policy2()),
                freq: MonitoringFrequency::default(),
                ambient: Ambient::default(),
                overload_confirm: SimDuration::from_secs(40),
                adaptive: None,
                push: true,
                commander: Some(dep.commanders[1]),
            },
            dep.schemas.clone(),
        )),
        SpawnOpts::named("ars_monitor"),
    );
    sim.run_until(t(3000.0));

    let m = hpcm
        .last_migration()
        .expect("migrated after re-registration");
    assert_eq!(m.to, HostId(2));
    let done = hpcm.completion_of("test_tree").expect("finished");
    assert_eq!(done.host, HostId(2));
}
