//! Malleable workloads: the `test_tree` and `stencil` lineages rebuilt on
//! registered block-cyclic arrays so the world can grow and shrink under
//! them.
//!
//! Both applications implement the three resize hooks of
//! [`MigratableApp`]: [`resize_comm`](MigratableApp::resize_comm) names the
//! communicator they are willing to resize, [`save_for_join`]
//! (MigratableApp::save_for_join) cuts a checkpoint for a spawned joiner,
//! and [`sync_key`](MigratableApp::sync_key) fingerprints the phase so the
//! coordinator refuses to redistribute data across ranks frozen at
//! different iterations.
//!
//! * [`MalleableTree`] — the `test_tree` workload as a bag of independent
//!   items over registered arrays. No point-to-point traffic at all, so any
//!   poll-point is safe (`sync_key` is constant) and every expand/shrink
//!   commits; work ownership follows the block-cyclic layout, so a resize
//!   re-partitions the remaining items automatically.
//! * [`MalleableStencil`] — the halo-exchange stencil with its grid in a
//!   registered array (one row per block). Only the start of an iteration
//!   is safe, and `sync_key` is the iteration number: members frozen at
//!   different iterations abort the resize instead of corrupting the halo
//!   pattern. An every-iteration residual all-reduce keeps ranks
//!   phase-locked so freezes normally land on the same iteration.

use ars_hpcm::{AppStatus, CodecError, MigratableApp, SavedState, StateReader, StateWriter};
use ars_mpisim::{redist, Allreduce, CommId, Mpi, Rank, ReduceOp, Step};
use ars_sim::{Ctx, Payload, Wake};
use ars_xmlwire::{AppCharacteristic, ApplicationSchema, ResourceRequirements};

/// Deterministic per-item value (same mixer as `test_tree`), folded into a
/// small exactly-representable f64.
fn item_value(seed: u64, g: u64) -> f64 {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(g);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((x ^ (x >> 31)) & 0xF_FFFF) as f64
}

/// Workload shape of [`MalleableTree`].
#[derive(Debug, Clone, PartialEq)]
pub struct MalleableTreeConfig {
    /// Number of independent work items (tree nodes) in the bag.
    pub items: u32,
    /// CPU-seconds per item on the reference machine.
    pub item_cost: f64,
    /// Items processed per compute op (each boundary is a poll-point).
    pub chunk_items: u32,
    /// Block size of the block-cyclic item layout.
    pub block: usize,
    /// Cost of an idle re-poll when a rank has no owned items left but the
    /// bag is not globally drained.
    pub poll_cost: f64,
    /// Modeled resident set per rank, kilobytes.
    pub rss_kb: u64,
    /// Seed for the item values.
    pub seed: u64,
}

impl MalleableTreeConfig {
    /// A small, fast instance for tests.
    pub fn small() -> Self {
        MalleableTreeConfig {
            items: 96,
            item_cost: 0.05,
            chunk_items: 4,
            block: 4,
            poll_cost: 0.05,
            rss_kb: 4_096,
            seed: 11,
        }
    }
}

/// Arrays registered by the tree bag.
const TREE_DONE: &str = "tree_done";
const TREE_VALUES: &str = "tree_values";

/// The malleable `test_tree`: a bag of `items` independent node
/// computations whose completion flags and results live in registered
/// block-cyclic arrays (see module docs).
pub struct MalleableTree {
    cfg: MalleableTreeConfig,
    mpi: Mpi,
    comm: CommId,
    /// Items picked for the compute op in flight; committed at its OpDone,
    /// discarded (and re-derived) when a reconfiguration replays the
    /// poll-point.
    picked: Vec<u64>,
    work_done: f64,
    finished: bool,
}

impl MalleableTree {
    /// Create one rank of the bag over an existing communicator. The
    /// shared arrays are registered lazily at the first `step` (harnesses
    /// construct apps before the communicator has its full membership).
    pub fn new(cfg: MalleableTreeConfig, mpi: Mpi, comm: CommId) -> Self {
        MalleableTree {
            cfg,
            mpi,
            comm,
            picked: Vec::new(),
            work_done: 0.0,
            finished: false,
        }
    }

    /// The digest a complete run must produce, computed directly.
    pub fn expected_digest(cfg: &MalleableTreeConfig) -> u64 {
        (0..cfg.items as u64)
            .map(|g| item_value(cfg.seed, g) as u64)
            .sum()
    }

    /// Register the shared arrays (idempotent across ranks and restores).
    fn ensure_registered(&self) {
        let _ = self.mpi.register_array(
            self.comm,
            TREE_DONE,
            self.cfg.items as usize,
            self.cfg.block,
        );
        let _ = self.mpi.register_array(
            self.comm,
            TREE_VALUES,
            self.cfg.items as usize,
            self.cfg.block,
        );
    }

    fn my_rank(&self, ctx: &Ctx<'_>) -> Option<u32> {
        let task = self.mpi.task_of(ctx.pid())?;
        self.mpi.rank_of(self.comm, task).ok().map(|r| r.0)
    }

    /// Pick the next chunk of owned, not-yet-done items and issue its
    /// compute op; re-poll when the bag still has foreign items in flight.
    fn pick_and_issue(&mut self, ctx: &mut Ctx<'_>) -> AppStatus {
        let Some(me) = self.my_rank(ctx) else {
            // Not a member (about to be retired): idle-poll until the
            // verdict arrives.
            ctx.compute(self.cfg.poll_cost);
            return AppStatus::Running;
        };
        let k = match self.mpi.comm_size(self.comm) {
            Ok(k) => k,
            Err(_) => return AppStatus::Finished,
        };
        self.picked.clear();
        let mut all_done = true;
        for g in 0..self.cfg.items as u64 {
            let done = self
                .mpi
                .array_get(self.comm, TREE_DONE, g as usize)
                .unwrap_or(1.0)
                >= 1.0;
            if done {
                continue;
            }
            all_done = false;
            if redist::owner(g as usize, self.cfg.block, k) == me
                && self.picked.len() < self.cfg.chunk_items as usize
            {
                self.picked.push(g);
            }
        }
        if all_done {
            return AppStatus::Finished;
        }
        if self.picked.is_empty() {
            // Someone else owns every remaining item: poll again shortly.
            ctx.compute(self.cfg.poll_cost);
        } else {
            ctx.compute(self.picked.len() as f64 * self.cfg.item_cost);
        }
        AppStatus::Running
    }

    /// Commit the chunk whose compute op just completed.
    fn commit_picked(&mut self) {
        for &g in &self.picked {
            let _ = self.mpi.array_set(self.comm, TREE_DONE, g as usize, 1.0);
            let _ = self.mpi.array_set(
                self.comm,
                TREE_VALUES,
                g as usize,
                item_value(self.cfg.seed, g),
            );
        }
        self.work_done += self.picked.len() as f64 * self.cfg.item_cost;
        self.picked.clear();
    }
}

impl MigratableApp for MalleableTree {
    fn app_name(&self) -> String {
        "malleable_tree".to_string()
    }

    fn schema(&self) -> ApplicationSchema {
        ApplicationSchema {
            app: "malleable_tree".to_string(),
            characteristic: AppCharacteristic::ComputeIntensive,
            est_comm_bytes: 0,
            requirements: ResourceRequirements {
                mem_kb: self.cfg.rss_kb,
                disk_kb: 0,
                min_cpu_speed: 0.1,
            },
            est_exec_time_s: self.cfg.items as f64 * self.cfg.item_cost,
            history_runs: 0,
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, wake: Wake) -> AppStatus {
        if self.finished {
            return AppStatus::Finished;
        }
        let status = match wake {
            Wake::Started => {
                // Fresh start, post-restore, or poll-point replay: any
                // un-committed pick is re-derived from the shared flags.
                self.ensure_registered();
                self.picked.clear();
                self.pick_and_issue(ctx)
            }
            Wake::OpDone => {
                self.commit_picked();
                self.pick_and_issue(ctx)
            }
            _ => AppStatus::Running,
        };
        if status == AppStatus::Finished {
            self.finished = true;
        }
        status
    }

    fn save(&self) -> SavedState {
        let mut w = StateWriter::new();
        w.u32(self.cfg.items)
            .f64(self.cfg.item_cost)
            .u32(self.cfg.chunk_items)
            .u64(self.cfg.block as u64)
            .f64(self.cfg.poll_cost)
            .u64(self.cfg.rss_kb)
            .u64(self.cfg.seed)
            .u32(self.comm.0)
            .f64(self.work_done);
        let eager = w.into_bytes();
        let lazy = (self.cfg.rss_kb * 1024).saturating_sub(eager.len() as u64);
        SavedState {
            eager,
            lazy_bytes: lazy,
        }
    }

    fn restore(eager: &[u8], mpi: Option<&Mpi>) -> Result<Self, CodecError> {
        let mpi = mpi.expect("malleable_tree needs the MPI world").clone();
        let mut r = StateReader::new(eager);
        let cfg = MalleableTreeConfig {
            items: r.u32()?,
            item_cost: r.f64()?,
            chunk_items: r.u32()?,
            block: r.u64()? as usize,
            poll_cost: r.f64()?,
            rss_kb: r.u64()?,
            seed: r.u64()?,
        };
        let comm = CommId(r.u32()?);
        let work_done = r.f64()?;
        // The arrays already exist in the world; registration is
        // idempotent and re-links nothing.
        let mut app = MalleableTree::new(cfg, mpi, comm);
        app.work_done = work_done;
        Ok(app)
    }

    fn progress(&self) -> f64 {
        self.work_done
    }

    fn result_digest(&self) -> u64 {
        self.mpi
            .array_global(self.comm, TREE_VALUES)
            .map(|v| v.iter().map(|&x| x as u64).sum())
            .unwrap_or(0)
    }

    fn resize_comm(&self) -> Option<CommId> {
        Some(self.comm)
    }

    fn save_for_join(&self, _rank: u32, _new_size: u32) -> Option<SavedState> {
        // A joiner is just another rank of the bag; the checkpoint carries
        // only the configuration (the data lives in the world's arrays).
        let mut s = self.save();
        s.lazy_bytes = 0; // redistribution traffic is modeled separately
        Some(s)
    }

    // Any poll-point is safe and phase-free: `migration_safe` stays the
    // default `true` and `sync_key` the default 0.
}

/// Workload shape of [`MalleableStencil`].
#[derive(Debug, Clone, PartialEq)]
pub struct MalleableStencilConfig {
    /// Iterations to run.
    pub iters: u32,
    /// CPU-seconds per iteration on the reference machine.
    pub compute_per_iter: f64,
    /// Halo size exchanged with each ring neighbour, bytes.
    pub halo_bytes: u64,
    /// Grid rows (the block-cyclic unit: one row per block).
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Modeled resident set per rank, kilobytes.
    pub rss_kb: u64,
}

impl MalleableStencilConfig {
    /// A small test instance.
    pub fn small() -> Self {
        MalleableStencilConfig {
            iters: 8,
            compute_per_iter: 0.4,
            halo_bytes: 32 * 1024,
            rows: 12,
            cols: 8,
            rss_kb: 8_192,
        }
    }
}

/// Halo tags alternate by iteration parity (same scheme as the fixed-size
/// stencil).
fn halo_tag(iter: u32) -> u32 {
    100 + (iter & 1)
}

const GRID: &str = "grid";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StencilPhase {
    /// Compute op in flight — the only migration-safe phase.
    Compute,
    /// Halo sends/recvs outstanding.
    Exchange,
    /// Residual all-reduce in flight (every iteration: it is the barrier
    /// that keeps ranks phase-locked for resizes).
    Reducing,
    /// All iterations finished.
    Done,
}

/// The malleable halo-exchange stencil (see module docs).
pub struct MalleableStencil {
    cfg: MalleableStencilConfig,
    mpi: Mpi,
    comm: CommId,
    iter: u32,
    phase: StencilPhase,
    exchange_left: u32,
    allreduce: Option<Allreduce>,
    /// Latest globally reduced residual.
    pub residual: f64,
}

impl MalleableStencil {
    /// Create one rank over an existing communicator. The grid array is
    /// registered lazily at the first `step`.
    pub fn new(cfg: MalleableStencilConfig, mpi: Mpi, comm: CommId) -> Self {
        MalleableStencil {
            cfg,
            mpi,
            comm,
            iter: 0,
            phase: StencilPhase::Compute,
            exchange_left: 0,
            allreduce: None,
            residual: 1.0,
        }
    }

    /// Iterations completed (diagnostics).
    pub fn iterations_done(&self) -> u32 {
        self.iter
    }

    /// The digest a complete run must produce: every cell ends at `iters`.
    pub fn expected_digest(cfg: &MalleableStencilConfig) -> u64 {
        (cfg.rows * cfg.cols) as u64 * cfg.iters as u64
    }

    /// Register the grid (idempotent across ranks and restores).
    fn ensure_registered(&self) {
        let _ = self.mpi.register_array(
            self.comm,
            GRID,
            self.cfg.rows * self.cfg.cols,
            self.cfg.cols,
        );
    }

    fn my_rank(&self, ctx: &Ctx<'_>) -> Option<u32> {
        let task = self.mpi.task_of(ctx.pid())?;
        self.mpi.rank_of(self.comm, task).ok().map(|r| r.0)
    }

    fn neighbours(&self, ctx: &Ctx<'_>) -> Vec<Rank> {
        let Ok(n) = self.mpi.comm_size(self.comm) else {
            return Vec::new();
        };
        let Some(me) = self.my_rank(ctx) else {
            return Vec::new();
        };
        if n <= 1 {
            return Vec::new();
        }
        let left = Rank((me + n - 1) % n);
        let right = Rank((me + 1) % n);
        if left == right {
            vec![left]
        } else {
            vec![left, right]
        }
    }

    /// Idempotent per-iteration grid update: every owned cell takes the
    /// iteration count, so replays after a rollback rewrite the same value
    /// and the finished grid is `iters` everywhere under any layout
    /// history.
    fn write_owned(&self, ctx: &Ctx<'_>) {
        let (Some(me), Ok(k)) = (self.my_rank(ctx), self.mpi.comm_size(self.comm)) else {
            return;
        };
        let total = self.cfg.rows * self.cfg.cols;
        for g in 0..total {
            if redist::owner(g, self.cfg.cols, k) == me {
                let _ = self
                    .mpi
                    .array_set(self.comm, GRID, g, (self.iter + 1) as f64);
            }
        }
    }

    fn issue_exchange(&mut self, ctx: &mut Ctx<'_>) {
        let neighbours = self.neighbours(ctx);
        if neighbours.is_empty() {
            self.after_exchange(ctx);
            return;
        }
        let tag = halo_tag(self.iter);
        for &nb in &neighbours {
            ars_mpisim::send(
                &self.mpi,
                ctx,
                self.comm,
                nb,
                tag,
                Payload::Empty,
                Some(self.cfg.halo_bytes),
            )
            .expect("halo send");
        }
        for &nb in &neighbours {
            ars_mpisim::recv(&self.mpi, ctx, self.comm, nb, tag).expect("halo recv");
        }
        self.exchange_left = 2 * neighbours.len() as u32;
        self.phase = StencilPhase::Exchange;
    }

    fn after_exchange(&mut self, ctx: &mut Ctx<'_>) {
        if self.mpi.comm_size(self.comm).unwrap_or(1) > 1 {
            let contribution = vec![self.residual * 0.5];
            let (ar, step) =
                Allreduce::start(&self.mpi, ctx, self.comm, ReduceOp::Max, contribution)
                    .expect("allreduce");
            self.allreduce = Some(ar);
            self.phase = StencilPhase::Reducing;
            if let Step::Done(v) = step {
                self.finish_reduce(ctx, v);
            }
        } else {
            self.residual *= 0.5;
            self.next_iteration(ctx);
        }
    }

    fn finish_reduce(&mut self, ctx: &mut Ctx<'_>, v: Vec<f64>) {
        self.residual = v.first().copied().unwrap_or(self.residual * 0.5);
        self.allreduce = None;
        self.next_iteration(ctx);
    }

    fn next_iteration(&mut self, ctx: &mut Ctx<'_>) {
        self.iter += 1;
        if self.iter >= self.cfg.iters {
            self.phase = StencilPhase::Done;
        } else {
            ctx.compute(self.cfg.compute_per_iter);
            self.phase = StencilPhase::Compute;
        }
    }
}

impl MigratableApp for MalleableStencil {
    fn app_name(&self) -> String {
        "malleable_stencil".to_string()
    }

    fn schema(&self) -> ApplicationSchema {
        ApplicationSchema {
            app: "malleable_stencil".to_string(),
            characteristic: AppCharacteristic::CommIntensive,
            est_comm_bytes: self.cfg.iters as u64 * 2 * self.cfg.halo_bytes,
            requirements: ResourceRequirements {
                mem_kb: self.cfg.rss_kb,
                disk_kb: 0,
                min_cpu_speed: 0.1,
            },
            est_exec_time_s: self.cfg.iters as f64 * self.cfg.compute_per_iter,
            history_runs: 0,
        }
    }

    fn step(&mut self, ctx: &mut Ctx<'_>, wake: Wake) -> AppStatus {
        match self.phase {
            StencilPhase::Done => return AppStatus::Finished,
            StencilPhase::Compute => match wake {
                Wake::Started => {
                    // Fresh start or poll-point replay of this iteration.
                    self.ensure_registered();
                    ctx.compute(self.cfg.compute_per_iter);
                }
                Wake::OpDone => {
                    self.write_owned(ctx);
                    self.issue_exchange(ctx);
                }
                _ => {}
            },
            StencilPhase::Exchange => match wake {
                Wake::OpDone | Wake::Received(_) => {
                    self.exchange_left = self.exchange_left.saturating_sub(1);
                    if self.exchange_left == 0 {
                        self.after_exchange(ctx);
                    }
                }
                _ => {}
            },
            StencilPhase::Reducing => {
                let mpi = self.mpi.clone();
                if let Some(ar) = &mut self.allreduce {
                    match ar.step(&mpi, ctx, Some(wake)).expect("allreduce step") {
                        Step::Pending => {}
                        Step::Done(v) => self.finish_reduce(ctx, v),
                    }
                }
            }
        }
        if self.phase == StencilPhase::Done {
            AppStatus::Finished
        } else {
            AppStatus::Running
        }
    }

    fn migration_safe(&self) -> bool {
        self.phase == StencilPhase::Compute
    }

    fn save(&self) -> SavedState {
        debug_assert_eq!(
            self.phase,
            StencilPhase::Compute,
            "save only at safe points"
        );
        let mut w = StateWriter::new();
        w.u32(self.cfg.iters)
            .f64(self.cfg.compute_per_iter)
            .u64(self.cfg.halo_bytes)
            .u64(self.cfg.rows as u64)
            .u64(self.cfg.cols as u64)
            .u64(self.cfg.rss_kb)
            .u32(self.comm.0)
            .u32(self.iter)
            .f64(self.residual);
        let eager = w.into_bytes();
        let lazy = (self.cfg.rss_kb * 1024).saturating_sub(eager.len() as u64);
        SavedState {
            eager,
            lazy_bytes: lazy,
        }
    }

    fn restore(eager: &[u8], mpi: Option<&Mpi>) -> Result<Self, CodecError> {
        let mpi = mpi.expect("malleable_stencil needs the MPI world").clone();
        let mut r = StateReader::new(eager);
        let cfg = MalleableStencilConfig {
            iters: r.u32()?,
            compute_per_iter: r.f64()?,
            halo_bytes: r.u64()?,
            rows: r.u64()? as usize,
            cols: r.u64()? as usize,
            rss_kb: r.u64()?,
        };
        let comm = CommId(r.u32()?);
        let iter = r.u32()?;
        let residual = r.f64()?;
        let mut app = MalleableStencil::new(cfg, mpi, comm);
        app.iter = iter;
        app.residual = residual;
        Ok(app)
    }

    fn progress(&self) -> f64 {
        self.iter as f64 * self.cfg.compute_per_iter
    }

    fn result_digest(&self) -> u64 {
        self.mpi
            .array_global(self.comm, GRID)
            .map(|v| v.iter().map(|&x| x as u64).sum())
            .unwrap_or(0)
    }

    fn resize_comm(&self) -> Option<CommId> {
        Some(self.comm)
    }

    fn save_for_join(&self, _rank: u32, _new_size: u32) -> Option<SavedState> {
        let mut s = self.save();
        s.lazy_bytes = 0;
        Some(s)
    }

    fn sync_key(&self) -> u64 {
        self.iter as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_digest_is_deterministic() {
        let cfg = MalleableTreeConfig::small();
        assert_eq!(
            MalleableTree::expected_digest(&cfg),
            MalleableTree::expected_digest(&cfg)
        );
        assert!(MalleableTree::expected_digest(&cfg) > 0);
    }

    #[test]
    fn tree_save_restore_roundtrip() {
        let mpi = Mpi::new();
        let t = mpi.bind_new_task(ars_sim::Pid(1));
        let comm = mpi.create_comm(vec![t]);
        let mut app = MalleableTree::new(MalleableTreeConfig::small(), mpi.clone(), comm);
        app.work_done = 1.25;
        let saved = app.save();
        let back = MalleableTree::restore(&saved.eager, Some(&mpi)).expect("valid");
        assert_eq!(back.cfg, app.cfg);
        assert_eq!(back.comm, comm);
        assert_eq!(back.work_done, 1.25);
        assert!(back.migration_safe());
        assert_eq!(back.sync_key(), 0);
    }

    #[test]
    fn tree_join_checkpoint_has_no_lazy_tail() {
        let mpi = Mpi::new();
        let t = mpi.bind_new_task(ars_sim::Pid(1));
        let comm = mpi.create_comm(vec![t]);
        let app = MalleableTree::new(MalleableTreeConfig::small(), mpi, comm);
        let j = app.save_for_join(1, 2).expect("joinable");
        assert_eq!(j.lazy_bytes, 0);
        assert!(!j.eager.is_empty());
    }

    #[test]
    fn stencil_sync_key_tracks_iteration() {
        let mpi = Mpi::new();
        let t = mpi.bind_new_task(ars_sim::Pid(1));
        let comm = mpi.create_comm(vec![t]);
        let mut app = MalleableStencil::new(MalleableStencilConfig::small(), mpi.clone(), comm);
        assert_eq!(app.sync_key(), 0);
        app.iter = 5;
        assert_eq!(app.sync_key(), 5);
        let saved = app.save();
        let back = MalleableStencil::restore(&saved.eager, Some(&mpi)).expect("valid");
        assert_eq!(back.iter, 5);
        assert_eq!(back.sync_key(), 5);
    }

    #[test]
    fn stencil_expected_digest_counts_cells() {
        let cfg = MalleableStencilConfig::small();
        assert_eq!(
            MalleableStencil::expected_digest(&cfg),
            (cfg.rows * cfg.cols * cfg.iters as usize) as u64
        );
    }
}
