//! Simulation event trace.
//!
//! A lightweight structured log of notable events (spawns, exits, messages,
//! migration phases, scheduling decisions). Tests assert on it; the figure
//! harness prints the migration timeline from it.

use ars_simcore::SimTime;

/// Category of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Process created.
    Spawn,
    /// Process terminated.
    Exit,
    /// Message delivered.
    Deliver,
    /// Signal posted.
    Signal,
    /// Migration protocol phase (detail names the phase).
    Migration,
    /// Scheduling decision (registry/scheduler).
    Decision,
    /// An injected fault took effect (crash, drop, partition, stall…).
    Fault,
    /// A recovery action: retransmit, rollback, abort, re-registration,
    /// soft-state reconstruction.
    Recovery,
    /// Anything else.
    Custom,
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// When it happened.
    pub t: SimTime,
    /// Category.
    pub kind: TraceKind,
    /// Free-form detail.
    pub detail: String,
}

/// The trace buffer.
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// A disabled trace (recording off).
    pub fn new() -> Self {
        Trace::default()
    }

    /// Enable or disable recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True when recording.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op while disabled).
    pub fn record(&mut self, t: SimTime, kind: TraceKind, detail: impl Into<String>) {
        if self.enabled {
            self.events.push(TraceEvent {
                t,
                kind,
                detail: detail.into(),
            });
        }
    }

    /// Record an event whose detail string is built lazily, so disabled
    /// traces skip the `format!` entirely (hot paths call this).
    pub fn record_with(&mut self, t: SimTime, kind: TraceKind, detail: impl FnOnce() -> String) {
        if self.enabled {
            self.events.push(TraceEvent {
                t,
                kind,
                detail: detail(),
            });
        }
    }

    /// All recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// First event of a kind whose detail contains `needle`.
    pub fn find(&self, kind: TraceKind, needle: &str) -> Option<&TraceEvent> {
        self.events
            .iter()
            .find(|e| e.kind == kind && e.detail.contains(needle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(SimTime::ZERO, TraceKind::Spawn, "x");
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_and_filters() {
        let mut t = Trace::new();
        t.set_enabled(true);
        t.record(SimTime::from_secs(1), TraceKind::Spawn, "pid1 on h0");
        t.record(SimTime::from_secs(2), TraceKind::Migration, "poll-point");
        t.record(SimTime::from_secs(3), TraceKind::Migration, "restore");
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.of_kind(TraceKind::Migration).count(), 2);
        let found = t.find(TraceKind::Migration, "restore").unwrap();
        assert_eq!(found.t, SimTime::from_secs(3));
        assert!(t.find(TraceKind::Exit, "").is_none());
    }
}
