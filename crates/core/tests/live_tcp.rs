//! The rescheduler protocol over real localhost TCP sockets.

use ars_rescheduler::live::{LiveClient, LiveError, LiveRegistry};
use ars_xmlwire::{EntityRole, HostState, HostStatic, Message, Metrics, ResourceRequirements};

fn statics(name: &str) -> HostStatic {
    HostStatic {
        name: name.to_string(),
        ip: "127.0.0.1".to_string(),
        os: "linux".to_string(),
        cpu_speed: 1.0,
        n_cpus: 1,
        mem_kb: 131_072,
    }
}

fn register(client: &mut LiveClient, name: &str) {
    let reply = client
        .call(&Message::Register {
            host: statics(name),
            role: EntityRole::Monitor,
        })
        .expect("register");
    assert!(matches!(reply, Message::Ack { ok: true, .. }));
}

fn heartbeat(client: &mut LiveClient, name: &str, state: HostState) {
    let mut metrics = Metrics::new();
    metrics.set("loadAvg1", if state == HostState::Free { 0.2 } else { 2.5 });
    let reply = client
        .call(&Message::Heartbeat {
            host: name.to_string(),
            state,
            metrics,
            procs: vec![],
        })
        .expect("heartbeat");
    assert!(matches!(reply, Message::Ack { ok: true, .. }));
}

#[test]
fn live_registry_serves_first_fit_over_tcp() {
    let registry = LiveRegistry::start().expect("bind");
    let addr = registry.addr();

    // Three monitors connect from "hosts" a, b, c.
    let mut a = LiveClient::connect(addr).unwrap();
    let mut b = LiveClient::connect(addr).unwrap();
    let mut c = LiveClient::connect(addr).unwrap();
    register(&mut a, "a");
    register(&mut b, "b");
    register(&mut c, "c");

    heartbeat(&mut a, "a", HostState::Overloaded);
    heartbeat(&mut b, "b", HostState::Busy);
    heartbeat(&mut c, "c", HostState::Free);

    // Overloaded host a asks for a candidate: first fit must skip busy b.
    let reply = a
        .call(&Message::CandidateRequest {
            host: "a".to_string(),
            requirements: ResourceRequirements::default(),
        })
        .unwrap();
    assert_eq!(
        reply,
        Message::CandidateReply {
            dest: Some("c".to_string())
        }
    );

    // Table state is observable.
    {
        let table = registry.table();
        let t = table.lock().expect("live table lock poisoned");
        assert_eq!(t.order, vec!["a", "b", "c"]);
        assert_eq!(t.entries["a"].state, HostState::Overloaded);
        assert_eq!(t.decisions.len(), 1);
    }

    // Once c becomes busy too, no candidate exists.
    heartbeat(&mut c, "c", HostState::Busy);
    let reply = a
        .call(&Message::CandidateRequest {
            host: "a".to_string(),
            requirements: ResourceRequirements::default(),
        })
        .unwrap();
    assert_eq!(reply, Message::CandidateReply { dest: None });

    registry.shutdown();
}

#[test]
fn heartbeat_before_registration_is_rejected() {
    let registry = LiveRegistry::start().expect("bind");
    let mut x = LiveClient::connect(registry.addr()).unwrap();
    let reply = x
        .call(&Message::Heartbeat {
            host: "ghost".to_string(),
            state: HostState::Free,
            metrics: Metrics::new(),
            procs: vec![],
        })
        .unwrap();
    assert!(matches!(reply, Message::Ack { ok: false, .. }));
    registry.shutdown();
}

#[test]
fn call_times_out_instead_of_hanging_on_a_silent_registry() {
    // A listener that accepts the connection but never replies models a
    // registry process that wedged mid-call.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));

    let mut client =
        LiveClient::connect_with_timeout(addr, std::time::Duration::from_millis(200)).unwrap();
    let started = std::time::Instant::now();
    let reply = client.call(&Message::CandidateRequest {
        host: "a".to_string(),
        requirements: ResourceRequirements::default(),
    });
    assert!(
        matches!(reply, Err(LiveError::Timeout(_))),
        "expected timeout, got {reply:?}"
    );
    // Bounded: well under the historical forever-hang.
    assert!(started.elapsed() < std::time::Duration::from_secs(5));
    drop(hold.join());
}

#[test]
fn call_reports_a_closed_registry() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // Accept, then hang up immediately.
    let closer = std::thread::spawn(move || {
        let _ = listener.accept();
    });
    let mut client = LiveClient::connect(addr).unwrap();
    client
        .set_call_timeout(std::time::Duration::from_secs(2))
        .unwrap();
    closer.join().unwrap();
    let reply = client.call(&Message::CandidateRequest {
        host: "a".to_string(),
        requirements: ResourceRequirements::default(),
    });
    // Depending on scheduling the write may succeed (buffered) and the
    // read sees EOF, or the write itself errors; both are typed, neither
    // hangs.
    assert!(
        matches!(reply, Err(LiveError::Closed) | Err(LiveError::Io(_))),
        "expected closed/io error, got {reply:?}"
    );
}

#[test]
fn connect_to_a_dead_address_fails_fast() {
    // Bind then drop: the port is (momentarily) known-dead.
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let r = LiveClient::connect_with_timeout(addr, std::time::Duration::from_millis(500));
    assert!(r.is_err());
}

#[test]
fn re_register_preserves_a_known_hosts_entry() {
    let registry = LiveRegistry::start().expect("bind");
    let mut c = LiveClient::connect(registry.addr()).unwrap();
    register(&mut c, "ws1");
    heartbeat(&mut c, "ws1", HostState::Overloaded);

    // A duplicate Register (monitor restart, retransmit) must not reset
    // the entry to Free with empty metrics — that made an overloaded host
    // look like a perfect migration destination.
    register(&mut c, "ws1");
    {
        let table = registry.table();
        let t = table.lock().unwrap();
        assert_eq!(t.order, vec!["ws1"], "no duplicate order entry");
        assert_eq!(t.entries["ws1"].state, HostState::Overloaded);
        assert!(t.entries["ws1"].metrics.get("loadAvg1").is_some());
    }

    // And the re-registered host still accepts heartbeats as known.
    heartbeat(&mut c, "ws1", HostState::Free);
    registry.shutdown();
}

#[test]
fn a_poisoned_table_lock_does_not_brick_later_clients() {
    let registry = LiveRegistry::start().expect("bind");
    let mut c = LiveClient::connect(registry.addr()).unwrap();
    register(&mut c, "ws1");

    // Poison the table mutex the way a panicking handler thread would:
    // panic while holding the guard.
    let table = registry.table();
    let poisoner = std::thread::spawn(move || {
        let _guard = table.lock().unwrap();
        panic!("simulated handler panic while holding the live table lock");
    });
    assert!(poisoner.join().is_err(), "thread must have panicked");
    assert!(registry.table().is_poisoned());

    // Handlers recover from the poisoned lock: registration and
    // heartbeats from later clients still succeed.
    let mut d = LiveClient::connect(registry.addr()).unwrap();
    register(&mut d, "ws2");
    heartbeat(&mut d, "ws2", HostState::Free);
    heartbeat(&mut c, "ws1", HostState::Overloaded);

    let reply = c
        .call(&Message::CandidateRequest {
            host: "ws1".to_string(),
            requirements: ResourceRequirements::default(),
        })
        .unwrap();
    assert_eq!(
        reply,
        Message::CandidateReply {
            dest: Some("ws2".to_string())
        }
    );
    registry.shutdown();
}

#[test]
fn a_host_never_picks_itself() {
    let registry = LiveRegistry::start().expect("bind");
    let mut a = LiveClient::connect(registry.addr()).unwrap();
    register(&mut a, "a");
    heartbeat(&mut a, "a", HostState::Free);
    // a is the only (free) host; it must not be offered to itself.
    let reply = a
        .call(&Message::CandidateRequest {
            host: "a".to_string(),
            requirements: ResourceRequirements::default(),
        })
        .unwrap();
    assert_eq!(reply, Message::CandidateReply { dest: None });
    registry.shutdown();
}
