//! Collective correctness across many communicator sizes and roots — the
//! binomial trees and linear fan-ins must deliver exact results for every
//! shape, not just the power-of-two cases.

use ars_mpisim::{Allreduce, Bcast, CommId, Gather, Mpi, Rank, ReduceOp, Step};
use ars_sim::{Ctx, HostId, Program, Sim, SimConfig, SpawnOpts, Wake};
use ars_simcore::SimTime;
use ars_simhost::HostConfig;
use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

fn t(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

/// Which collective to exercise.
#[derive(Clone, Copy)]
enum Op {
    Bcast { root: u32 },
    Allreduce,
    Gather { root: u32 },
}

enum Machine {
    None,
    Bcast(Bcast),
    Allreduce(Allreduce),
    Gather(Gather),
}

/// Shared result sink: rank → final vector.
type Results = Rc<RefCell<Vec<Option<Vec<f64>>>>>;

struct RankProg {
    mpi: Mpi,
    comm: CommId,
    me: u32,
    op: Op,
    machine: Machine,
    results: Results,
}

impl RankProg {
    fn finish(&mut self, v: Vec<f64>) {
        self.results.borrow_mut()[self.me as usize] = Some(v);
        self.machine = Machine::None;
    }

    fn begin(&mut self, ctx: &mut Ctx<'_>) {
        let mpi = self.mpi.clone();
        match self.op {
            Op::Bcast { root } => {
                let data = (self.me == root).then(|| vec![root as f64, 42.0]);
                let (m, s) = Bcast::start(&mpi, ctx, self.comm, Rank(root), data).unwrap();
                self.machine = Machine::Bcast(m);
                if let Step::Done(v) = s {
                    self.finish(v);
                }
            }
            Op::Allreduce => {
                let contribution = vec![self.me as f64, 1.0];
                let (m, s) =
                    Allreduce::start(&mpi, ctx, self.comm, ReduceOp::Sum, contribution).unwrap();
                self.machine = Machine::Allreduce(m);
                if let Step::Done(v) = s {
                    self.finish(v);
                }
            }
            Op::Gather { root } => {
                let contribution = vec![self.me as f64 * 10.0];
                let (m, s) = Gather::start(&mpi, ctx, self.comm, Rank(root), contribution).unwrap();
                self.machine = Machine::Gather(m);
                if let Step::Done(v) = s {
                    self.finish(v);
                }
            }
        }
    }
}

impl Program for RankProg {
    fn on_wake(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
        match wake {
            Wake::Started => self.begin(ctx),
            w => {
                let mpi = self.mpi.clone();
                let done = match &mut self.machine {
                    Machine::None => None,
                    Machine::Bcast(m) => match m.step(&mpi, ctx, Some(w)).unwrap() {
                        Step::Done(v) => Some(v),
                        Step::Pending => None,
                    },
                    Machine::Allreduce(m) => match m.step(&mpi, ctx, Some(w)).unwrap() {
                        Step::Done(v) => Some(v),
                        Step::Pending => None,
                    },
                    Machine::Gather(m) => match m.step(&mpi, ctx, Some(w)).unwrap() {
                        Step::Done(v) => Some(v),
                        Step::Pending => None,
                    },
                };
                if let Some(v) = done {
                    self.finish(v);
                }
            }
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

fn run(n: u32, op: Op) -> Vec<Option<Vec<f64>>> {
    let mut sim = Sim::new(
        (0..n)
            .map(|i| HostConfig::named(format!("ws{i}")))
            .collect(),
        SimConfig::default(),
    );
    let mpi = Mpi::new();
    let results: Results = Rc::new(RefCell::new(vec![None; n as usize]));
    let mut pids = Vec::new();
    let mut tasks = Vec::new();
    for i in 0..n {
        let pid = sim.spawn(
            HostId(i),
            Box::new(RankProg {
                mpi: mpi.clone(),
                comm: CommId(u32::MAX),
                me: i,
                op,
                machine: Machine::None,
                results: results.clone(),
            }),
            SpawnOpts::named(format!("rank{i}")),
        );
        tasks.push(mpi.bind_new_task(pid));
        pids.push(pid);
    }
    let comm = mpi.create_comm(tasks);
    for &pid in &pids {
        sim.program_mut(pid)
            .unwrap()
            .as_any()
            .downcast_mut::<RankProg>()
            .unwrap()
            .comm = comm;
    }
    sim.run_until(t(60.0));
    let out = results.borrow().clone();
    out
}

#[test]
fn bcast_every_size_and_root() {
    for n in 1..=17u32 {
        for root in [0, 1, n / 2, n.saturating_sub(1)] {
            let root = root.min(n - 1);
            let results = run(n, Op::Bcast { root });
            for (i, r) in results.iter().enumerate() {
                let v = r
                    .as_ref()
                    .unwrap_or_else(|| panic!("n={n} root={root} rank {i} hung"));
                assert_eq!(v, &vec![root as f64, 42.0], "n={n} root={root} rank {i}");
            }
        }
    }
}

#[test]
fn allreduce_every_size() {
    for n in 1..=17u32 {
        let results = run(n, Op::Allreduce);
        let expect = vec![(0..n).map(f64::from).sum::<f64>(), n as f64];
        for (i, r) in results.iter().enumerate() {
            let v = r.as_ref().unwrap_or_else(|| panic!("n={n} rank {i} hung"));
            assert_eq!(v, &expect, "n={n} rank {i}");
        }
    }
}

#[test]
fn gather_every_size_and_root() {
    for n in 1..=12u32 {
        for root in [0, n - 1] {
            let results = run(n, Op::Gather { root });
            let expect: Vec<f64> = (0..n).map(|i| i as f64 * 10.0).collect();
            let v = results[root as usize]
                .as_ref()
                .unwrap_or_else(|| panic!("n={n} root={root} root hung"));
            assert_eq!(v, &expect, "n={n} root={root}");
            for (i, r) in results.iter().enumerate() {
                assert!(r.is_some(), "n={n} root={root} rank {i} hung");
            }
        }
    }
}
