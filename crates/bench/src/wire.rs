//! Live-path wire benchmark: registrations/sec, heartbeats/sec and
//! command round-trip latency against a real [`LiveRegistry`] at high
//! connection counts, XML vs binary codec.
//!
//! The load generator is a single-threaded non-blocking client-side
//! reactor — the mirror image of the server's — so one process can hold
//! thousands of concurrent monitor connections without thousands of
//! threads. At 10k connections the server and the generator each need
//! ~10k file descriptors, which together overflow a typical 20k `ulimit
//! -n`; the `bench_wire` binary therefore re-executes itself as a child
//! process for the load side (see `--load` in `bin/bench_wire.rs`), and
//! this module only assumes its *own* process stays within the limit.
//!
//! Measurement protocol per cell:
//!
//! 1. open N connections (blocking connect, then switched non-blocking);
//! 2. **registration phase** — every connection sends `Register` and the
//!    phase ends when every ack has arrived: `reg_per_sec` = N / elapsed;
//! 3. **heartbeat window** — every connection pipelines one heartbeat at
//!    a time (send, await ack, send the next) for `window_s` seconds:
//!    `hb_per_sec` counts completed round trips across all connections,
//!    while connection 0 doubles as the **latency probe**, timing each of
//!    its own round trips for `rtt_mean_s`/`rtt_p99_s`. The probe races
//!    the same full-fanout load as every other connection, so its latency
//!    is the commanded-host experience under pressure, not an idle ping.
//!    The probe is serviced every [`PROBE_STRIDE`] connections inside the
//!    sweep (not once per sweep): at 10k connections one generator sweep
//!    takes hundreds of milliseconds, and a once-per-sweep probe would
//!    measure the generator's own loop period instead of how long the
//!    registry takes to turn a heartbeat around.

use ars_xmlwire::wire::{encode_frame_into, FrameReader, WireCodecKind, MAX_FRAME_BYTES};
use ars_xmlwire::{EntityRole, HostState, HostStatic, Message, Metrics, BIN_PREAMBLE};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// What one load-generator run measured (serialized over the parent ↔
/// child pipe as a single JSON line).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Registrations completed per second (whole-phase aggregate).
    pub reg_per_sec: f64,
    /// Heartbeat round trips completed per second across all connections.
    pub hb_per_sec: f64,
    /// Mean probe round-trip latency, seconds.
    pub rtt_mean_s: f64,
    /// 99th-percentile probe round-trip latency, seconds.
    pub rtt_p99_s: f64,
    /// Total heartbeat round trips inside the window.
    pub hb_total: u64,
    /// Probe round trips the latency stats are computed from.
    pub rtt_samples: u64,
}

impl LoadReport {
    /// One-line JSON for the parent ↔ child pipe and BENCH_wire.json.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"reg_per_sec\": {:.1}, \"hb_per_sec\": {:.1}, \"rtt_mean_s\": {:.6}, \
             \"rtt_p99_s\": {:.6}, \"hb_total\": {}, \"rtt_samples\": {}}}",
            self.reg_per_sec,
            self.hb_per_sec,
            self.rtt_mean_s,
            self.rtt_p99_s,
            self.hb_total,
            self.rtt_samples
        )
    }

    /// Parse the `to_json` line back (no serde in the image; the format
    /// is our own, so a field-by-field scan is enough).
    pub fn parse(line: &str) -> Option<LoadReport> {
        fn field(line: &str, key: &str) -> Option<f64> {
            let at = line.find(&format!("\"{key}\":"))?;
            let rest = line[at..].split_once(':')?.1;
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            rest[..end].trim().parse().ok()
        }
        Some(LoadReport {
            reg_per_sec: field(line, "reg_per_sec")?,
            hb_per_sec: field(line, "hb_per_sec")?,
            rtt_mean_s: field(line, "rtt_mean_s")?,
            rtt_p99_s: field(line, "rtt_p99_s")?,
            hb_total: field(line, "hb_total")? as u64,
            rtt_samples: field(line, "rtt_samples")? as u64,
        })
    }
}

/// One generator-side connection: non-blocking stream, partial-frame
/// reader, pending outbound bytes, and whether a request is in flight.
struct LoadConn {
    stream: TcpStream,
    frames: FrameReader,
    out: Vec<u8>,
    out_pos: usize,
    inflight: bool,
}

impl LoadConn {
    fn queue(&mut self, msg: &Message, codec: WireCodecKind) {
        encode_frame_into(msg, codec, &mut self.out);
    }

    fn flush(&mut self) -> std::io::Result<()> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "registry hung up mid-frame",
                    ))
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(())
    }

    /// Read whatever is available; returns the number of complete
    /// messages decoded (all replies here are acks — content is checked
    /// by the protocol tests, throughput is what's measured).
    fn drain(&mut self, rbuf: &mut [u8]) -> std::io::Result<u64> {
        let mut acks = 0;
        loop {
            match self.stream.read(rbuf) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "registry closed the connection",
                    ))
                }
                Ok(n) => {
                    self.frames.push(&rbuf[..n]);
                    loop {
                        match self.frames.next_frame() {
                            Ok(Some(_)) => acks += 1,
                            Ok(None) => break,
                            Err(e) => {
                                return Err(std::io::Error::new(
                                    std::io::ErrorKind::InvalidData,
                                    e.to_string(),
                                ))
                            }
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(acks)
    }
}

/// How many non-probe connections are serviced between probe checks
/// during the heartbeat window. Small enough that probe latency is
/// dominated by the server turnaround, large enough that probe servicing
/// does not distort the aggregate throughput sweep.
const PROBE_STRIDE: usize = 256;

/// Drive the probe connection one step: keep exactly one timed heartbeat
/// in flight and record its round trip when the ack lands.
fn service_probe(
    c: &mut LoadConn,
    codec: WireCodecKind,
    rbuf: &mut [u8],
    probe_sent: &mut Option<Instant>,
    rtt: &mut Vec<f64>,
    hb_total: &mut u64,
) -> std::io::Result<bool> {
    let mut progressed = false;
    if !c.inflight {
        c.queue(&heartbeat_msg(0), codec);
        c.inflight = true;
        *probe_sent = Some(Instant::now());
        progressed = true;
    }
    c.flush()?;
    let acks = c.drain(rbuf)?;
    if acks > 0 {
        c.inflight = false;
        *hb_total += acks;
        progressed = true;
        if let Some(sent) = probe_sent.take() {
            rtt.push(sent.elapsed().as_secs_f64());
        }
    }
    Ok(progressed)
}

fn host_name(i: usize) -> String {
    format!("h{i:05}")
}

fn register_msg(i: usize) -> Message {
    Message::Register {
        host: HostStatic {
            name: host_name(i),
            ip: "127.0.0.1".to_string(),
            os: "linux".to_string(),
            cpu_speed: 1.0,
            n_cpus: 1,
            mem_kb: 131_072,
        },
        role: EntityRole::Monitor,
    }
}

fn heartbeat_msg(i: usize) -> Message {
    let mut metrics = Metrics::new();
    metrics.set("loadAvg1", 0.25);
    metrics.set("nproc", 10.0);
    metrics.set("memAvail", 50.0);
    metrics.set("diskAvailKb", 4_000_000.0);
    Message::Heartbeat {
        host: host_name(i),
        state: HostState::Free,
        metrics,
        procs: vec![],
    }
}

/// Run the load against a live registry at `addr`: open `conns`
/// connections in the given codec, register them all, then drive the
/// heartbeat window for `window_s` seconds. Single-threaded; needs
/// `conns` + O(1) file descriptors.
pub fn run_load(
    addr: SocketAddr,
    codec: WireCodecKind,
    conns: usize,
    window_s: f64,
) -> std::io::Result<LoadReport> {
    let mut pool = Vec::with_capacity(conns);
    for _ in 0..conns {
        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
        stream.set_nodelay(true).ok();
        if codec == WireCodecKind::Binary {
            stream.write_all(&BIN_PREAMBLE)?;
        }
        stream.set_nonblocking(true)?;
        pool.push(LoadConn {
            stream,
            frames: FrameReader::for_codec(codec, MAX_FRAME_BYTES),
            out: Vec::new(),
            out_pos: 0,
            inflight: false,
        });
    }
    let mut rbuf = vec![0u8; 64 * 1024];

    // Registration phase: every connection sends one Register; the phase
    // ends when every ack is back.
    let reg_start = Instant::now();
    for (i, c) in pool.iter_mut().enumerate() {
        c.queue(&register_msg(i), codec);
        c.inflight = true;
    }
    let mut outstanding = conns as u64;
    while outstanding > 0 {
        let mut progressed = false;
        for c in pool.iter_mut() {
            c.flush()?;
            let acks = c.drain(&mut rbuf)?;
            if acks > 0 {
                c.inflight = false;
                outstanding -= acks;
                progressed = true;
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let reg_elapsed = reg_start.elapsed().as_secs_f64();

    // Heartbeat window: each connection pipelines one heartbeat at a
    // time; connection 0 is the timed latency probe, serviced every
    // PROBE_STRIDE connections so its round trips sample the registry's
    // turnaround rather than this loop's sweep period.
    let window = Duration::from_secs_f64(window_s);
    let hb_start = Instant::now();
    let mut hb_total: u64 = 0;
    let mut probe_sent: Option<Instant> = None;
    let mut rtt: Vec<f64> = Vec::new();
    let (probe, rest) = pool.split_at_mut(1);
    let probe = &mut probe[0];
    while hb_start.elapsed() < window {
        let mut progressed = service_probe(
            probe,
            codec,
            &mut rbuf,
            &mut probe_sent,
            &mut rtt,
            &mut hb_total,
        )?;
        for (j, c) in rest.iter_mut().enumerate() {
            if !c.inflight {
                c.queue(&heartbeat_msg(j + 1), codec);
                c.inflight = true;
                progressed = true;
            }
            c.flush()?;
            let acks = c.drain(&mut rbuf)?;
            if acks > 0 {
                debug_assert!(acks == 1, "one reply per pipelined heartbeat");
                c.inflight = false;
                hb_total += acks;
                progressed = true;
            }
            if (j + 1) % PROBE_STRIDE == 0 {
                progressed |= service_probe(
                    probe,
                    codec,
                    &mut rbuf,
                    &mut probe_sent,
                    &mut rtt,
                    &mut hb_total,
                )?;
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let hb_elapsed = hb_start.elapsed().as_secs_f64();

    rtt.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rtt_mean_s = if rtt.is_empty() {
        0.0
    } else {
        rtt.iter().sum::<f64>() / rtt.len() as f64
    };
    let rtt_p99_s = if rtt.is_empty() {
        0.0
    } else {
        rtt[((rtt.len() - 1) as f64 * 0.99) as usize]
    };
    Ok(LoadReport {
        reg_per_sec: conns as f64 / reg_elapsed,
        hb_per_sec: hb_total as f64 / hb_elapsed,
        rtt_mean_s,
        rtt_p99_s,
        hb_total,
        rtt_samples: rtt.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_round_trips() {
        let report = LoadReport {
            reg_per_sec: 12_345.6,
            hb_per_sec: 98_765.4,
            rtt_mean_s: 0.000321,
            rtt_p99_s: 0.001234,
            hb_total: 424_242,
            rtt_samples: 991,
        };
        let back = LoadReport::parse(&report.to_json()).expect("parse");
        assert_eq!(back.hb_total, report.hb_total);
        assert_eq!(back.rtt_samples, report.rtt_samples);
        assert!((back.reg_per_sec - report.reg_per_sec).abs() < 0.11);
        assert!((back.rtt_mean_s - report.rtt_mean_s).abs() < 1e-6);
    }
}
