#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it lands.
#   - build + full test suite (release, so the DES scenarios stay fast)
#   - rustfmt (no diffs)
#   - clippy with warnings denied
# Run from the repository root: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
cargo build --release --workspace

echo "== examples build =="
cargo build --release --examples

echo "== tests =="
cargo test --release --workspace -q

echo "== driver differential =="
# The DES adapter and the live TCP driver replay one scripted command
# sequence into the shared RegistryCore and must land in identical state —
# the live leg runs once per wire codec (XML and binary).
cargo test --release -q -p ars-rescheduler --test differential

echo "== wire codecs =="
# Cross-codec fidelity: the golden corpus must be byte-identical in XML to
# the legacy framing and round-trip through both codecs (plus the proptest
# differential); the live reactor must serve mixed codecs, survive hostile
# peers, and enforce frame caps.
cargo test --release -q -p ars-xmlwire --test codec_fidelity
cargo test --release -q -p ars-rescheduler --test live_tcp

echo "== wire smoke (256 conns per codec) =="
# One small live-registry load cell per codec: asserts liveness and sane
# latency-sample counts, not codec ordering (CI boxes cannot promise
# stable relative timings).
timeout 120 ./target/release/bench_wire --smoke

echo "== chaos matrix =="
# The chaos suite already runs once (default seeds) as part of the
# workspace tests above; this pass widens the seeded fault-schedule matrix.
# Every schedule must terminate with each app completed or lost-with-cause,
# and must replay bit-identically.
ARS_CHAOS_SEEDS="3,5,11,12,13,17,23,42" \
    cargo test --release -q --test chaos -- chaos_liveness_over_the_seed_matrix

echo "== registry chaos (tree mode) =="
# Registry fault tolerance: a depth-3 tree with one mid-registry crashed
# per seed must complete every app (re-parenting + escalation deadlines)
# and replay bit-identically. Small seed matrix to stay inside the wall
# budget — the default-seed pass already ran with the workspace tests.
ARS_CHAOS_SEEDS="5,11,42" timeout 300 \
    cargo test --release -q --test chaos -- \
    tree_chaos_mid_registry_crash_keeps_all_apps_completing

echo "== malleability =="
# The reconfiguration engine: expand/shrink/back-to-back e2e commits and
# refusal paths, block-cyclic redistribution proptests (bit-for-bit
# k→k'→k round-trips), and the full overload scenario with its three
# gates (replay determinism, inert-config byte-identity, malleable arm
# strictly better on throughput AND turnaround).
cargo test --release -q -p ars-apps --test malleable_e2e
cargo test --release -q -p ars-mpisim --test redist_props
timeout 180 ./target/release/bench_malleable --smoke

echo "== reconfiguration chaos (mid-expand crashes) =="
# A joiner host crashed at seeded pre-commit times must always roll the
# world back (old size, old epoch, exact digests) and replay
# bit-identically. Wider matrix than the default workspace pass.
ARS_CHAOS_SEEDS="3,5,11,12,13,17,23,42" timeout 300 \
    cargo test --release -q --test chaos -- \
    expand_crash_rolls_back_to_the_old_world_over_the_seed_matrix

echo "== registry fault zero-cost gate =="
# An armed-but-idle registry fault engine (plan present, nothing fires)
# must leave tree traces byte-identical, with fault tolerance off and on.
cargo test --release -q --test chaos -- \
    an_armed_but_idle_registry_fault_engine_is_byte_identical

echo "== observability equivalence =="
# Zero-cost guarantee: a chaos run with an enabled observability session
# must produce a byte-identical kernel trace to the same run without one
# (same discipline as the fault-layer equivalence test).
cargo test --release -q --test chaos -- \
    enabling_observability_does_not_perturb_the_trace \
    disabled_fault_plan_is_byte_identical_to_no_fault_layer

echo "== scale smoke (N = 4096, hierarchical + sharded) =="
# The two scaling paths at 4096 simulated hosts must finish inside the
# wall budget and still migrate; catches superlinear regressions in the
# kernel hot path long before the full bench matrix would.
timeout 180 ./target/release/bench_scale --smoke

echo "== allocation lints (sim crates) =="
# The kernel hot path is allocation-free by construction; deny the two
# lints that catch clones/to_owned creeping back into it.
cargo clippy -p ars-sim -p ars-simcore -p ars-simnet -p ars-simhost -p ars-rescheduler \
    --all-targets -- -D warnings -D clippy::unnecessary_to_owned -D clippy::redundant_clone

echo "== rustfmt =="
# Vendored crates (vendor/*) keep their upstream formatting, so list our
# packages explicitly instead of using --all.
fmt_packages=(-p ars)
for manifest in crates/*/Cargo.toml; do
    fmt_packages+=(-p "$(sed -n 's/^name = "\(.*\)"/\1/p' "$manifest" | head -1)")
done
cargo fmt "${fmt_packages[@]}" -- --check

echo "== clippy =="
cargo clippy --workspace --exclude proptest --exclude criterion --all-targets -- -D warnings

echo "ci: all green"
