//! Property-based tests for the network model.

use ars_simnet::{Network, NetworkConfig, NodeId};
use ars_simcore::SimTime;
use proptest::prelude::*;

fn t_us(us: u64) -> SimTime {
    SimTime::from_micros(us)
}

proptest! {
    /// Conservation: every byte sent is received (total tx == total rx).
    #[test]
    fn tx_equals_rx(
        n_nodes in 2usize..8,
        flows in proptest::collection::vec(
            (0u32..8, 0u32..8, 1_000.0f64..50_000_000.0, 0u64..5_000_000),
            1..20,
        ),
    ) {
        let mut net = Network::new(n_nodes, NetworkConfig::default());
        let mut evs: Vec<(u64, u32, u32, f64)> = flows
            .into_iter()
            .map(|(s, d, b, at)| (at, s % n_nodes as u32, d % n_nodes as u32, b))
            .filter(|&(_, s, d, _)| s != d)
            .collect();
        evs.sort_by_key(|&(at, ..)| at);
        for &(at, s, d, b) in &evs {
            net.start_flow(t_us(at), NodeId(s), NodeId(d), Some(b));
        }
        net.advance(t_us(60_000_000));
        let tx: f64 = (0..n_nodes).map(|i| net.tx_bytes(NodeId(i as u32))).sum();
        let rx: f64 = (0..n_nodes).map(|i| net.rx_bytes(NodeId(i as u32))).sum();
        prop_assert!((tx - rx).abs() < 1e-3, "tx {tx} rx {rx}");
    }

    /// No flow transfers more than it asked for, and all bounded flows
    /// complete given enough time.
    #[test]
    fn flows_complete_exactly(
        bytes in proptest::collection::vec(1_000.0f64..10_000_000.0, 1..10),
    ) {
        let mut net = Network::new(2, NetworkConfig::default());
        let ids: Vec<_> = bytes
            .iter()
            .map(|&b| net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), Some(b)))
            .collect();
        // Total work bounded by sum/capacity; give it double.
        let total: f64 = bytes.iter().sum();
        let enough = SimTime::from_secs_f64(2.0 * total / 12_500_000.0 + 1.0);
        net.advance(enough);
        for (id, &b) in ids.iter().zip(&bytes) {
            let moved = net.transferred_of(*id);
            prop_assert!((moved - b).abs() < 1e-3, "moved {moved} of {b}");
        }
        prop_assert_eq!(net.finished_flows().len(), bytes.len());
    }

    /// A NIC never carries more than its capacity: cumulative bytes out of
    /// one node over a window never exceed capacity * window.
    #[test]
    fn nic_capacity_respected(
        bytes in proptest::collection::vec(1_000.0f64..20_000_000.0, 1..10),
        window_us in 100_000u64..5_000_000,
    ) {
        let mut net = Network::new(3, NetworkConfig::default());
        for (i, &b) in bytes.iter().enumerate() {
            let dst = NodeId(1 + (i % 2) as u32);
            net.start_flow(SimTime::ZERO, NodeId(0), dst, Some(b));
        }
        net.advance(t_us(window_us));
        let tx = net.tx_bytes(NodeId(0));
        let cap = 12_500_000.0 * window_us as f64 / 1e6;
        prop_assert!(tx <= cap * (1.0 + 1e-9) + 1.0, "tx {tx} cap {cap}");
    }
}
