//! The per-host commander entity.
//!
//! "The registry/scheduler sends a message to the source machine's local
//! commander to initialize the migration. After receiving the message, the
//! source machine's local commander issues a command to the migrating
//! process … the address and the port of the destination machine are
//! written to a temporary file and are read by the migrating process. We
//! defined this command as a user-defined signal." (§3, §3.3)

use crate::hooks::CONTROL_TAG;
use ars_hpcm::{dest_file_path, MIGRATE_SIGNAL};
use ars_obs::Obs;
use ars_sim::{Ctx, Payload, Pid, Program, TraceKind, Wake};
use ars_xmlwire::{EntityRole, HostStatic, Message};

/// The commander program: a passive daemon waiting for migration commands.
pub struct Commander {
    registry: Pid,
    /// Commands executed (diagnostics).
    pub commands_handled: u64,
    /// Observability session (command-handling counters).
    obs: Obs,
}

impl Commander {
    /// Create a commander reporting to `registry`.
    pub fn new(registry: Pid) -> Self {
        Commander {
            registry,
            commands_handled: 0,
            obs: Obs::disabled(),
        }
    }

    /// Install an observability session (builder style).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    fn host_static(ctx: &Ctx<'_>) -> HostStatic {
        let cfg = ctx.host().config();
        HostStatic {
            name: cfg.name.clone(),
            ip: format!("10.0.0.{}", ctx.host_id().0 + 1),
            os: cfg.os.clone(),
            cpu_speed: cfg.cpu_speed,
            n_cpus: cfg.n_cpus,
            mem_kb: cfg.mem_kb,
        }
    }
}

impl Program for Commander {
    fn on_wake(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
        match wake {
            Wake::Started => {
                let msg = Message::Register {
                    host: Self::host_static(ctx),
                    role: EntityRole::Commander,
                };
                ctx.send(self.registry, CONTROL_TAG, Payload::Text(msg.to_document()));
            }
            Wake::Received(env) => {
                let Some(text) = env.payload.as_text() else {
                    return;
                };
                let Ok(msg) = Message::decode(text) else {
                    ctx.trace(TraceKind::Custom, "commander: undecodable message");
                    return;
                };
                match msg {
                    Message::MigrationCommand {
                        pid,
                        dest,
                        dest_port,
                        ..
                    } => {
                        // Temp-file handoff + user-defined signal. Commands
                        // are retransmitted until acknowledged, so this may
                        // run more than once per migration; the handoff is
                        // idempotent and the migration shell ignores the
                        // signal while a transaction is already in flight.
                        // Reconfiguration specs (expand:/shrink:) carry their
                        // own structure and go through verbatim; a bare host
                        // gets the destination port appended as before.
                        let target = Pid(pid);
                        let resize = dest.starts_with("expand:") || dest.starts_with("shrink:");
                        let handoff = if resize {
                            dest.clone()
                        } else {
                            format!("{dest}:{dest_port}")
                        };
                        ctx.write_file(&dest_file_path(target), &handoff);
                        ctx.signal(target, MIGRATE_SIGNAL);
                        self.commands_handled += 1;
                        self.obs.inc("commander_commands_handled");
                        let verb = if resize { "reconfigure" } else { "migrate" };
                        ctx.trace(
                            TraceKind::Decision,
                            format!("commander {}: {verb} pid{pid} -> {dest}", ctx.host().name()),
                        );
                        let ack = Message::CommandAck {
                            host: ctx.host().name().to_string(),
                            pid,
                            ok: true,
                        };
                        ctx.send(self.registry, CONTROL_TAG, Payload::Text(ack.to_document()));
                    }
                    Message::ReRegister { .. } => {
                        // The registry lost its soft state (restart); the
                        // monitor relayed its nudge to us. Introduce
                        // ourselves again so commands can be addressed.
                        ctx.trace(
                            TraceKind::Recovery,
                            format!("commander {}: re-registering", ctx.host().name()),
                        );
                        let msg = Message::Register {
                            host: Self::host_static(ctx),
                            role: EntityRole::Commander,
                        };
                        ctx.send(self.registry, CONTROL_TAG, Payload::Text(msg.to_document()));
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
