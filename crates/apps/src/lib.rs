//! # ars-apps — migration-enabled workloads and load generators
//!
//! * [`test_tree`] — the paper's evaluation application (build binary
//!   trees, random node values, sort, sum), migration-enabled with a
//!   verifiable checksum;
//! * [`load`] — CPU hogs, ambient daemon noise and spinners used to drive
//!   hosts into the *busy*/*overloaded* states;
//! * [`comm`] — paced bulk streams (Table 2's communicating pair) and the
//!   few-KB/s ambient chatter behind Figure 6;
//! * [`stencil`] — an iterative halo-exchange MPI application with
//!   migration-safe iteration boundaries;
//! * [`malleable`] — the malleable variants of `test_tree` and `stencil`:
//!   registered block-cyclic arrays, join checkpoints and phase sync keys
//!   so the reconfiguration engine can grow and shrink their worlds.

#![warn(missing_docs)]

pub mod comm;
pub mod load;
pub mod malleable;
pub mod stencil;
pub mod test_tree;

pub use comm::{Chatter, CommFlood, Sink, TAG_BULK, TAG_CHATTER};
pub use load::{CpuHog, DaemonNoise, PollDaemon, Spinner};
pub use malleable::{MalleableStencil, MalleableStencilConfig, MalleableTree, MalleableTreeConfig};
pub use stencil::{Stencil, StencilConfig};
pub use test_tree::{TestTree, TestTreeConfig};
