//! Table 2 — comparison of the three migration policies on the paper's
//! five-workstation scenario.

use ars_bench::policies;

fn main() {
    println!("Table 2 — Comparison of Policies\n");
    println!(
        "{:<8} {:>14} {:>10} {:>12} {:>14} {:>16}",
        "Policy", "total exec (s)", "migrate to", "source (s)", "destination (s)", "migration (s)"
    );
    for o in policies::run_all(3) {
        println!(
            "{:<8} {:>14.2} {:>10} {:>12.2} {:>14.2} {:>16}",
            o.policy,
            o.total_s,
            o.migrate_to.as_deref().unwrap_or("-"),
            o.source_s,
            o.dest_s,
            o.migration_s.map_or("-".to_string(), |m| format!("{m:.2}")),
        );
    }
    println!("\npaper:");
    println!(
        "{:<8} {:>14} {:>10} {:>12} {:>14} {:>16}",
        "1", "983.6", "-", "983.6", "0", "-"
    );
    println!(
        "{:<8} {:>14} {:>10} {:>12} {:>14} {:>16}",
        "2", "433.27", "2nd", "242.68", "198.98", "8.31"
    );
    println!(
        "{:<8} {:>14} {:>10} {:>12} {:>14} {:>16}",
        "3", "329.71", "4th", "221.28", "115.13", "6.71"
    );
    println!("\nshape checks: policy1 slowest; policy2 picks the communicating host (2nd);");
    println!("policy3 picks the free host (4th) and finishes fastest.");
}
