//! Live mode: the rescheduler protocol over real TCP sockets.
//!
//! The paper's communication subsystem is "a custom XML based protocol with
//! TCP/IP sockets". The simulated entities exchange exactly those XML
//! documents as message payloads; this module runs the same documents over
//! real localhost sockets — a registry/scheduler server plus client-side
//! helpers — demonstrating that the wire format is transport independent.
//!
//! Framing: one XML document per line (the writer emits single-line
//! documents; newline is therefore an unambiguous delimiter).

use crate::hooks::DecisionRecord;
use ars_xmlwire::{HostState, Message, Metrics};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::Instant;

/// Write one message to a stream (newline-framed).
pub fn write_msg(stream: &mut impl Write, msg: &Message) -> std::io::Result<()> {
    let doc = msg.to_document();
    debug_assert!(!doc.contains('\n'), "documents are single-line");
    stream.write_all(doc.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Read one message from a buffered stream; `None` at EOF.
pub fn read_msg(reader: &mut impl BufRead) -> std::io::Result<Option<Message>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    Message::decode(line.trim_end())
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Registry-side view of one live host.
#[derive(Debug, Clone)]
pub struct LiveEntry {
    /// Last reported state.
    pub state: HostState,
    /// Last reported metrics.
    pub metrics: Metrics,
    /// Wall-clock instant of the last refresh.
    pub last_seen: Instant,
}

/// Shared state of a live registry.
#[derive(Default)]
pub struct LiveTable {
    /// Hosts in registration order (first-fit order).
    pub order: Vec<String>,
    /// Host entries.
    pub entries: HashMap<String, LiveEntry>,
    /// Decisions taken (candidate replies served).
    pub decisions: Vec<DecisionRecord>,
}

/// Handle to a running live registry server.
pub struct LiveRegistry {
    addr: SocketAddr,
    table: Arc<Mutex<LiveTable>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl LiveRegistry {
    /// Start a registry server on `127.0.0.1:0` (ephemeral port).
    pub fn start() -> std::io::Result<LiveRegistry> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let table: Arc<Mutex<LiveTable>> = Arc::default();
        let stop = Arc::new(AtomicBool::new(false));
        let t_table = table.clone();
        let t_stop = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            let mut workers = Vec::new();
            while !t_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        let table = t_table.clone();
                        let stop = t_stop.clone();
                        workers.push(std::thread::spawn(move || {
                            let _ = serve_client(stream, table, stop);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(LiveRegistry {
            addr,
            table,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The server's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the registry table.
    pub fn table(&self) -> Arc<Mutex<LiveTable>> {
        self.table.clone()
    }

    /// Stop accepting and wind down (open client connections unblock at
    /// their next message).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for LiveRegistry {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn first_fit(table: &LiveTable, exclude: &str) -> Option<String> {
    table
        .order
        .iter()
        .find(|name| {
            name.as_str() != exclude
                && table
                    .entries
                    .get(*name)
                    .is_some_and(|e| e.state == HostState::Free)
        })
        .cloned()
}

fn serve_client(
    stream: TcpStream,
    table: Arc<Mutex<LiveTable>>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<()> {
    // Wake periodically so the stop flag is honoured even while idle. The
    // line buffer persists across timeouts, so a message split across reads
    // is never lost.
    stream.set_read_timeout(Some(std::time::Duration::from_millis(100)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while !stop.load(Ordering::Relaxed) {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) if line.ends_with('\n') => {}
            Ok(_) => continue, // partial line; keep accumulating
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
        let msg = match Message::decode(line.trim_end()) {
            Ok(m) => m,
            Err(_) => {
                line.clear();
                write_msg(
                    &mut writer,
                    &Message::Ack {
                        ok: false,
                        info: "undecodable message".to_string(),
                    },
                )?;
                continue;
            }
        };
        line.clear();
        match msg {
            Message::Register { host, .. } => {
                let mut t = table.lock().expect("live table lock poisoned");
                if !t.order.contains(&host.name) {
                    t.order.push(host.name.clone());
                }
                t.entries.insert(
                    host.name.clone(),
                    LiveEntry {
                        state: HostState::Free,
                        metrics: Metrics::new(),
                        last_seen: Instant::now(),
                    },
                );
                write_msg(
                    &mut writer,
                    &Message::Ack {
                        ok: true,
                        info: format!("registered {}", host.name),
                    },
                )?;
            }
            Message::Heartbeat {
                host,
                state,
                metrics,
                ..
            } => {
                let mut t = table.lock().expect("live table lock poisoned");
                let known = t.entries.contains_key(&host);
                if known {
                    t.entries.insert(
                        host.clone(),
                        LiveEntry {
                            state,
                            metrics,
                            last_seen: Instant::now(),
                        },
                    );
                }
                write_msg(
                    &mut writer,
                    &Message::Ack {
                        ok: known,
                        info: if known {
                            String::new()
                        } else {
                            format!("{host} is not registered")
                        },
                    },
                )?;
            }
            Message::CandidateRequest { host, .. } => {
                let mut t = table.lock().expect("live table lock poisoned");
                let dest = first_fit(&t, &host);
                t.decisions.push(DecisionRecord {
                    at: ars_simcore::SimTime::ZERO,
                    source: host,
                    dest: dest.clone(),
                    pid: None,
                    escalated: false,
                });
                write_msg(&mut writer, &Message::CandidateReply { dest })?;
            }
            other => {
                write_msg(
                    &mut writer,
                    &Message::Ack {
                        ok: false,
                        info: format!("unexpected {}", other.type_tag()),
                    },
                )?;
            }
        }
    }
    Ok(())
}

/// A live client connection to the registry (monitor side).
pub struct LiveClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl LiveClient {
    /// Connect to a live registry.
    pub fn connect(addr: SocketAddr) -> std::io::Result<LiveClient> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(LiveClient {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Send a message and read the reply.
    pub fn call(&mut self, msg: &Message) -> std::io::Result<Message> {
        write_msg(&mut self.writer, msg)?;
        read_msg(&mut self.reader)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "registry closed")
        })
    }
}
