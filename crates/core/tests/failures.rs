//! Failure injection: the rescheduler must degrade gracefully when its own
//! entities die or when the environment misbehaves.

use ars_apps::{Spinner, TestTree, TestTreeConfig};
use ars_hpcm::{HpcmConfig, HpcmHooks, HpcmShell, MigratableApp};
use ars_rescheduler::{deploy, DeployConfig};
use ars_sim::{Ctx, HostId, Pid, Program, Sim, SimConfig, SpawnOpts, Wake};
use ars_simcore::{SimDuration, SimTime};
use ars_simhost::HostConfig;

fn t(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

fn cluster(n: usize) -> Sim {
    Sim::new(
        (0..n)
            .map(|i| HostConfig::named(format!("ws{i}")))
            .collect(),
        SimConfig {
            trace: true,
            ..SimConfig::default()
        },
    )
}

struct Killer {
    victim: Pid,
}

impl Program for Killer {
    fn on_wake(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
        if let Wake::Started = wake {
            ctx.kill(self.victim);
            ctx.exit();
        }
    }
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn kill(sim: &mut Sim, victim: Pid) {
    sim.spawn(
        HostId(0),
        Box::new(Killer { victim }),
        SpawnOpts::named("kill"),
    );
}

fn tree() -> TestTreeConfig {
    TestTreeConfig {
        trees: 8,
        levels: 13,
        node_cost_build: 2e-3,
        node_cost_sort: 3e-3,
        node_cost_sum: 1e-3,
        chunk_nodes: 1024,
        rss_kb: 24_576,
        seed: 31,
    }
}

#[test]
fn dead_registry_degrades_to_no_migration() {
    let mut sim = cluster(3);
    let dep = deploy(
        &mut sim,
        HostId(0),
        &[HostId(1), HostId(2)],
        DeployConfig::default(),
    );
    let app = TestTree::new(tree());
    dep.schemas.put(MigratableApp::schema(&app));
    let hpcm = HpcmHooks::new();
    HpcmShell::spawn_on(
        &mut sim,
        HostId(1),
        app,
        HpcmConfig::default(),
        None,
        hpcm.clone(),
    );
    sim.run_until(t(30.0));
    kill(&mut sim, dep.registry);
    for _ in 0..2 {
        sim.spawn(
            HostId(1),
            Box::new(Spinner::default()),
            SpawnOpts::named("hog"),
        );
    }
    sim.run_until(t(3000.0));
    // Monitors keep heartbeating into the void; no migration is ever
    // commanded, and the application still completes on the loaded host.
    assert_eq!(hpcm.migration_count(), 0);
    let done = hpcm.completion_of("test_tree").expect("finished anyway");
    assert_eq!(done.host, HostId(1));
}

#[test]
fn dead_commander_swallows_the_command_without_damage() {
    let mut sim = cluster(3);
    let dep = deploy(
        &mut sim,
        HostId(0),
        &[HostId(1), HostId(2)],
        DeployConfig {
            overload_confirm: SimDuration::from_secs(40),
            ..DeployConfig::default()
        },
    );
    let app = TestTree::new(tree());
    dep.schemas.put(MigratableApp::schema(&app));
    let hpcm = HpcmHooks::new();
    HpcmShell::spawn_on(
        &mut sim,
        HostId(1),
        app,
        HpcmConfig::default(),
        None,
        hpcm.clone(),
    );
    sim.run_until(t(30.0));
    kill(&mut sim, dep.commanders[0]); // ws1's commander dies
    for _ in 0..2 {
        sim.spawn(
            HostId(1),
            Box::new(Spinner::default()),
            SpawnOpts::named("hog"),
        );
    }
    sim.run_until(t(3000.0));
    // The registry decided and commanded, but the command had no receiver;
    // the process never saw a signal and finished where it was.
    assert!(dep.hooks.commands_sent() >= 1, "registry did try");
    assert_eq!(hpcm.migration_count(), 0);
    let done = hpcm.completion_of("test_tree").expect("finished");
    assert_eq!(done.host, HostId(1));
}

#[test]
fn dead_monitor_makes_host_invisible_but_its_commander_still_works() {
    // ws2's monitor dies; ws2 stops being offered as a destination but the
    // rescheduler still migrates to ws3.
    let mut sim = cluster(4);
    let dep = deploy(
        &mut sim,
        HostId(0),
        &[HostId(1), HostId(2), HostId(3)],
        DeployConfig {
            overload_confirm: SimDuration::from_secs(40),
            ..DeployConfig::default()
        },
    );
    let app = TestTree::new(tree());
    dep.schemas.put(MigratableApp::schema(&app));
    let hpcm = HpcmHooks::new();
    HpcmShell::spawn_on(
        &mut sim,
        HostId(1),
        app,
        HpcmConfig::default(),
        None,
        hpcm.clone(),
    );
    sim.run_until(t(30.0));
    kill(&mut sim, dep.monitors[1]);
    sim.run_until(t(90.0)); // lease (35 s) expires for ws2
    for _ in 0..2 {
        sim.spawn(
            HostId(1),
            Box::new(Spinner::default()),
            SpawnOpts::named("hog"),
        );
    }
    sim.run_until(t(3000.0));
    let m = hpcm.last_migration().expect("migrated");
    assert_eq!(m.to, HostId(3));
}

#[test]
fn command_for_an_already_dead_pid_is_harmless() {
    let mut sim = cluster(3);
    let dep = deploy(
        &mut sim,
        HostId(0),
        &[HostId(1), HostId(2)],
        DeployConfig {
            overload_confirm: SimDuration::from_secs(40),
            ..DeployConfig::default()
        },
    );
    // A short app that exits right around the decision point plus a long
    // spinner keeping the host overloaded.
    let app = TestTree::new(TestTreeConfig {
        trees: 2,
        levels: 12,
        node_cost_build: 3e-3,
        node_cost_sort: 4e-3,
        node_cost_sum: 2e-3,
        chunk_nodes: 1024,
        rss_kb: 8_192,
        seed: 5,
    });
    dep.schemas.put(MigratableApp::schema(&app));
    let hpcm = HpcmHooks::new();
    HpcmShell::spawn_on(
        &mut sim,
        HostId(1),
        app,
        HpcmConfig::default(),
        None,
        hpcm.clone(),
    );
    for _ in 0..2 {
        sim.spawn(
            HostId(1),
            Box::new(Spinner::default()),
            SpawnOpts::named("hog"),
        );
    }
    // Run long enough that heartbeats can still name the app while it is
    // exiting; any command that races the exit must be dropped cleanly.
    sim.run_until(t(2000.0));
    assert!(hpcm.completion_of("test_tree").is_some());
    // No migration of a dead process may ever be recorded as completed
    // without a resume.
    for m in hpcm.0.borrow().migrations.iter() {
        assert!(m.resumed_at.is_some(), "half-migrations must not linger");
    }
}

#[test]
fn destination_killed_mid_restore_loses_only_that_process() {
    // Harness-commanded migration whose destination process is killed
    // just after the transaction commits: ownership has moved, the source
    // has wound down, so the application is lost — but the simulation and
    // the other entities are unaffected. Pre-commit destination losses
    // roll back instead (crates/hpcm/tests/rollback.rs); this documents
    // what the commit point means.
    let mut sim = cluster(3);
    let hpcm = HpcmHooks::new();
    let pid = HpcmShell::spawn_on(
        &mut sim,
        HostId(1),
        TestTree::new(tree()),
        HpcmConfig::default(),
        None,
        hpcm.clone(),
    );
    sim.run_until(t(10.0));
    sim.kernel_mut().hosts[1].write_file(ars_hpcm::dest_file_path(pid), "ws2:7801");
    sim.signal(pid, ars_hpcm::MIGRATE_SIGNAL);
    sim.run_until(t(11.0)); // poll-point hit, destination spawned
    let m = hpcm.last_migration().expect("in flight");
    kill(&mut sim, m.pid_new);
    sim.run_until(t(2000.0));
    assert!(!sim.is_alive(pid), "source exited");
    assert!(!sim.is_alive(m.pid_new), "destination dead");
    assert!(hpcm.completion_of("test_tree").is_none(), "process lost");
    // The cluster itself is still healthy: a fresh app runs fine.
    let hpcm2 = HpcmHooks::new();
    HpcmShell::spawn_on(
        &mut sim,
        HostId(2),
        TestTree::new(TestTreeConfig::small()),
        HpcmConfig::default(),
        None,
        hpcm2.clone(),
    );
    sim.run_until(t(2300.0));
    assert!(hpcm2.completion_of("test_tree").is_some());
}

#[test]
fn adaptive_window_learns_from_transient_bursts() {
    use ars_apps::CpuHog;
    use ars_rescheduler::AdaptiveConfig;
    let mut sim = cluster(3);
    let dep = deploy(
        &mut sim,
        HostId(0),
        &[HostId(1), HostId(2)],
        DeployConfig {
            overload_confirm: SimDuration::from_secs(15),
            adaptive: Some(AdaptiveConfig {
                // The bursts in this test clear ~40 s after confirmation.
                transient_within: SimDuration::from_secs(60),
                ..AdaptiveConfig::default()
            }),
            ..DeployConfig::default()
        },
    );
    // A long-lived migratable app so heartbeats carry processes.
    let mut cfg = tree();
    cfg.trees = 32;
    let app = TestTree::new(cfg);
    dep.schemas.put(MigratableApp::schema(&app));
    let hpcm = HpcmHooks::new();
    HpcmShell::spawn_on(&mut sim, HostId(1), app, HpcmConfig::default(), None, hpcm);

    // Repeated short bursts that clear soon after confirmation.
    for round in 0..6u64 {
        sim.run_until(t(200.0 + 300.0 * round as f64));
        for _ in 0..2 {
            sim.spawn(
                HostId(1),
                Box::new(CpuHog::new(30.0)),
                SpawnOpts::named("burst"),
            );
        }
    }
    sim.run_until(t(2200.0));

    let monitor = sim
        .program_mut(dep.monitors[0])
        .expect("monitor alive")
        .as_any()
        .downcast_mut::<ars_rescheduler::Monitor>()
        .unwrap();
    let window = monitor.confirm_window();
    assert!(
        window > SimDuration::from_secs(15),
        "window grew from 15 s to {window} after transient episodes"
    );
    let adaptive = monitor.adaptive.as_ref().unwrap();
    assert!(adaptive.transients_seen >= 1);
}
