//! One-shot reproduction: runs every paper experiment and prints the
//! headline comparisons. (Each figure/table also has its own binary with
//! full series output — see README.)
//!
//! ```sh
//! cargo run --release -p ars-bench --bin repro_all
//! ```

use ars_bench::overhead::{overhead_pct, RUN_SECS, WARMUP_SECS};
use ars_bench::{efficiency, mean_between, overhead, policies};

fn main() {
    println!("=== ars: full paper reproduction ===\n");

    // Figures 5 & 6 — overhead.
    println!("[1/4] §5.1 overhead (Figures 5 & 6)…");
    let without = overhead::run(false, 42);
    let with = overhead::run(true, 42);
    let (from, to) = (WARMUP_SECS as f64, RUN_SECS as f64);
    let l1 = (
        mean_between(&without.load1, from, to),
        mean_between(&with.load1, from, to),
    );
    let tx = (
        mean_between(&without.tx_kbps, from, to),
        mean_between(&with.tx_kbps, from, to),
    );
    println!(
        "  1-min load {:.3} -> {:.3} ({:+.1}%; paper +3.9%)   send KB/s {:.2} -> {:.2} ({:+.1}%; paper ~0%)",
        l1.0,
        l1.1,
        overhead_pct(l1.0, l1.1),
        tx.0,
        tx.1,
        overhead_pct(tx.0, tx.1),
    );

    // §5.2 + Figures 7 & 8 — efficiency.
    println!("\n[2/4] §5.2 migration timeline (Figures 7 & 8)…");
    let run = efficiency::run(42);
    let m = &run.migration;
    let resumed = m.resumed_at.expect("resumed");
    let lazy = m.lazy_done_at.expect("complete");
    println!(
        "  decision 0.002 s; poll-point {:+.2} s; resume {:.2} s; total {:.2} s (paper ~7.5 s); overlap: {}",
        m.pollpoint_at.since(run.decision.at).as_secs_f64(),
        resumed.since(m.pollpoint_at).as_secs_f64(),
        lazy.since(m.pollpoint_at).as_secs_f64(),
        resumed < lazy,
    );

    // Table 2 — policies.
    println!("\n[3/4] §5.3 policies (Table 2)…");
    for o in policies::run_all(3) {
        println!(
            "  policy {}: total {:>7.1} s  dest {:>4}  migration {}",
            o.policy,
            o.total_s,
            o.migrate_to.as_deref().unwrap_or("-"),
            o.migration_s
                .map_or("-".to_string(), |s| format!("{s:.2} s")),
        );
    }
    println!("  (paper: 983.6 / 433.27 -> 2nd / 329.71 -> 4th)");

    // Table 1 — definitional; verified by the test suite.
    println!("\n[4/4] Table 1 state/action matrix: verified by unit tests;");
    println!("      run `table1_states` for the printed matrix and rule file.");
    println!("\nAblations: ablate_{{warmup,preinit,hierarchy,monitor_freq,selection,adaptive,push_pull}}");
}
