//! A fast, non-cryptographic hasher for the simulator's internal maps.
//!
//! The kernel keys its bookkeeping maps (job → pid, flow → purpose,
//! pid → forward target) by small integer ids, where SipHash's DoS
//! resistance buys nothing and its latency sits on the per-event hot path.
//! This is the Fowler–Noll–Vo–style multiply hash used by rustc ("FxHash"):
//! one rotate, one xor and one multiply per 8-byte word.
//!
//! Only use these maps for lookups keyed by values the simulation itself
//! generates (ids, interned names); never for untrusted external input.
//! Iteration order is unspecified, exactly like `std::collections::HashMap` —
//! code that iterates must not let the order become observable behaviour.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc multiply-xor hasher (64-bit state).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<(u32, u64), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, u64::from(i) * 7), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, u64::from(i) * 7)), Some(&i));
            assert!(m.remove(&(i, u64::from(i) * 7)).is_some());
        }
        assert!(m.is_empty());
    }

    #[test]
    fn hashes_are_stable_within_a_process() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<FxHasher> = BuildHasherDefault::default();
        assert_eq!(b.hash_one(42u64), b.hash_one(42u64));
        assert_ne!(b.hash_one(42u64), b.hash_one(43u64));
    }

    #[test]
    fn uneven_byte_tails_differ() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<FxHasher> = BuildHasherDefault::default();
        assert_ne!(
            b.hash_one([1u8, 2, 3].as_slice()),
            b.hash_one([1u8, 2].as_slice())
        );
    }
}
