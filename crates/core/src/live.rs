//! Live mode: the rescheduler protocol over real TCP sockets.
//!
//! The paper's communication subsystem is "a custom XML based protocol with
//! TCP/IP sockets". The simulated entities exchange exactly those XML
//! documents as message payloads; this module runs the same protocol over
//! real localhost sockets — a registry/scheduler server plus client-side
//! helpers — demonstrating that the wire format *and the scheduler itself*
//! are transport independent: the server is the same sans-I/O
//! [`RegistryCore`] the simulation drives, fed from socket reads and
//! replayed onto socket writes. That gives the live path everything the
//! simulated registry has — schema resource requirements, rule-policy
//! destination conditions, the missed-heartbeat failure detector, command
//! retransmits — none of which the old socket-local table implemented.
//!
//! ## Transport architecture
//!
//! The server is a **single-threaded non-blocking readiness reactor**, not
//! a thread per connection: one thread owns the listener and every
//! connection (each with its own read/write buffers and a partial-frame
//! [`FrameReader`]), and each tick accepts new peers, drains readable
//! sockets, feeds the decoded batch through the shared [`RegistryCore`]
//! under one lock acquisition, then flushes encoded replies. That is what
//! lets one registry hold thousands of concurrent monitor connections —
//! the thread-per-connection design topped out on stack memory and context
//! switches long before the scheduler core was the bottleneck.
//!
//! ## Framing and codecs
//!
//! Two codecs share the same message model ([`WireCodecKind`]): the
//! paper-faithful newline-framed single-line XML documents (the default —
//! byte-identical to the historical wire format) and a length-prefixed
//! binary codec. The codec is negotiated per connection from the first
//! bytes the client sends (`<` → XML, [`ars_xmlwire::BIN_PREAMBLE`] →
//! binary); the server answers in kind, so old XML peers interoperate with
//! binary ones on the same port with no configuration.

use crate::hooks::{DecisionRecord, ReschedLog, SchemaBook};
use crate::regcore::{
    CoreEffect, CoreInput, Endpoint, LogEffect, RegistryConfig, RegistryCore, TimerId,
};
use ars_obs::{Obs, ObsEvent};
use ars_rules::Policy;
use ars_simcore::SimTime;
use ars_xmlwire::wire::{
    encode_frame_into, FrameReader, WireCodecKind, WireError, MAX_FRAME_BYTES,
};
use ars_xmlwire::{Message, BIN_PREAMBLE};
use std::collections::HashMap;
use std::io::{BufRead, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Default deadline for connecting to and calling a live registry. A dead
/// registry process must surface as an error, not a hung monitor.
pub const LIVE_CALL_TIMEOUT: Duration = Duration::from_secs(5);

/// Tuning knobs for the live transport (server side).
#[derive(Debug, Clone)]
pub struct LiveOptions {
    /// Largest accepted frame (XML line or binary payload), in bytes.
    /// A peer whose frame crosses this cap is disconnected with a
    /// [`WireError::FrameTooLarge`] rather than buffered without bound.
    pub max_frame: usize,
    /// Backpressure bound: a connection whose *outbound* buffer exceeds
    /// this many bytes (a peer that stopped reading) is dropped. The
    /// protocol is soft-state — a re-registering peer recovers — so
    /// shedding a stuck peer beats letting it pin server memory.
    pub max_write_buffer: usize,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            max_frame: MAX_FRAME_BYTES,
            max_write_buffer: 4 * 1024 * 1024,
        }
    }
}

/// What went wrong talking to a live registry.
#[derive(Debug)]
pub enum LiveError {
    /// Could not connect, or the connection broke mid-call.
    Io(std::io::Error),
    /// The registry did not answer within the call deadline.
    Timeout(Duration),
    /// The registry closed the connection (clean EOF mid-call).
    Closed,
    /// The reply was not a decodable protocol frame.
    Protocol(String),
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::Io(e) => write!(f, "registry i/o error: {e}"),
            LiveError::Timeout(d) => {
                write!(f, "registry did not reply within {:.1}s", d.as_secs_f64())
            }
            LiveError::Closed => write!(f, "registry closed the connection"),
            LiveError::Protocol(e) => write!(f, "undecodable registry reply: {e}"),
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LiveError {
    fn from(e: std::io::Error) -> Self {
        LiveError::Io(e)
    }
}

/// Write one message to a stream (newline-framed XML).
pub fn write_msg(stream: &mut impl Write, msg: &Message) -> std::io::Result<()> {
    let doc = msg.to_document();
    debug_assert!(!doc.contains('\n'), "documents are single-line");
    stream.write_all(doc.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Read one newline-framed XML message from a buffered stream; `None` at
/// EOF. A line longer than [`MAX_FRAME_BYTES`] is rejected with a typed
/// [`WireError::FrameTooLarge`] (wrapped in `InvalidData`) instead of
/// letting a malformed peer grow the line buffer without bound.
pub fn read_msg(reader: &mut impl BufRead) -> std::io::Result<Option<Message>> {
    let mut line = Vec::new();
    // Bound the read *before* the allocation happens: a frame that hits the
    // cap without a newline is hostile or corrupt either way.
    let n = reader
        .take(MAX_FRAME_BYTES as u64 + 1)
        .read_until(b'\n', &mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            WireError::FrameTooLarge {
                limit: MAX_FRAME_BYTES,
                got: n,
            },
        ));
    }
    let text = std::str::from_utf8(&line)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Message::decode(text.trim_end())
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Everything the reactor shares with [`LiveRegistry::inspect`]: the
/// scheduler core, its decision log, and the armed retransmit timers.
/// Socket state (buffers, frame readers) is owned exclusively by the
/// reactor thread and never sits behind this lock.
struct LiveShared {
    core: RegistryCore,
    log: ReschedLog,
    timers: Vec<(Instant, TimerId)>,
}

/// Lock the shared state, recovering from poisoning. An inspector that
/// panics mid-closure leaves the mutex poisoned; one bad observer must not
/// brick the registry. The core is a soft-state cache refreshed by
/// heartbeats, so the worst a recovered lock can expose is a stale entry —
/// not corruption.
fn lock_shared(shared: &Mutex<LiveShared>) -> MutexGuard<'_, LiveShared> {
    shared.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Handle to a running live registry server.
pub struct LiveRegistry {
    addr: SocketAddr,
    shared: Arc<Mutex<LiveShared>>,
    epoch: Instant,
    stop: Arc<AtomicBool>,
    reactor_thread: Option<std::thread::JoinHandle<()>>,
}

impl LiveRegistry {
    /// Start a registry server on `127.0.0.1:0` (ephemeral port) with a
    /// permissive default configuration: no destination conditions and no
    /// resource floors, i.e. any free, alive, non-source host qualifies.
    /// Use [`start_with`](Self::start_with) to schedule against a real
    /// policy and schema book.
    pub fn start() -> std::io::Result<LiveRegistry> {
        let mut cfg = RegistryConfig::new(Policy::no_migration());
        cfg.name = "live".to_string();
        Self::start_with(cfg, SchemaBook::new())
    }

    /// Start a registry server with an explicit configuration and schema
    /// book — the same [`RegistryConfig`] the simulated registry takes, so
    /// rule-policy destination conditions, resource requirements, leases
    /// and retransmit tuning all apply to live scheduling.
    pub fn start_with(cfg: RegistryConfig, schemas: SchemaBook) -> std::io::Result<LiveRegistry> {
        Self::start_with_options(cfg, schemas, LiveOptions::default())
    }

    /// [`start_with`](Self::start_with), plus explicit transport tuning
    /// (frame cap, write-buffer backpressure bound).
    pub fn start_with_options(
        cfg: RegistryConfig,
        schemas: SchemaBook,
        options: LiveOptions,
    ) -> std::io::Result<LiveRegistry> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let obs = cfg.obs.clone();
        let shared = Arc::new(Mutex::new(LiveShared {
            core: RegistryCore::new(cfg, schemas),
            log: ReschedLog::default(),
            timers: Vec::new(),
        }));
        let epoch = Instant::now();
        let stop = Arc::new(AtomicBool::new(false));
        let t_shared = shared.clone();
        let t_stop = stop.clone();
        let reactor_thread = std::thread::spawn(move || {
            Reactor {
                listener,
                shared: t_shared,
                stop: t_stop,
                epoch,
                obs,
                options,
                conns: HashMap::new(),
                next_conn: 1,
                outbound: Vec::new(),
            }
            .run()
        });
        Ok(LiveRegistry {
            addr,
            shared,
            epoch,
            stop,
            reactor_thread: Some(reactor_thread),
        })
    }

    /// The server's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry's clock: seconds since the server started, as the
    /// `SimTime` the core is being fed.
    pub fn now(&self) -> SimTime {
        SimTime::from_secs_f64(self.epoch.elapsed().as_secs_f64())
    }

    /// Run a read-only closure against the scheduler core and its decision
    /// log (tests/diagnostics). Takes the shared lock for the duration.
    pub fn inspect<R>(&self, f: impl FnOnce(&RegistryCore, &ReschedLog) -> R) -> R {
        let shared = lock_shared(&self.shared);
        f(&shared.core, &shared.log)
    }

    /// Snapshot of the decision log.
    pub fn log(&self) -> ReschedLog {
        self.inspect(|_, log| log.clone())
    }

    /// Stop accepting and wind down (open client connections observe EOF).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for LiveRegistry {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
    }
}

/// The core's clock input: wall seconds since the server's epoch.
fn now_since(epoch: Instant) -> SimTime {
    SimTime::from_secs_f64(epoch.elapsed().as_secs_f64())
}

fn apply_log(log: &mut ReschedLog, effect: LogEffect) {
    match effect {
        LogEffect::Decision(record) => log.decisions.push(record),
        LogEffect::CommandSent => log.commands_sent += 1,
        LogEffect::CommandRetransmit => log.command_retransmits += 1,
        LogEffect::CommandAborted => log.commands_aborted += 1,
    }
}

/// Replay core effects, collecting outbound messages into `out` (the
/// reactor encodes and writes them after the lock is released).
/// [`CoreEffect::StartDecision`] has no CPU to charge here, so due
/// decisions are fed straight back until the core goes quiet.
/// `candidate_ctx` carries the (connection, source host) of an in-flight
/// [`Message::CandidateRequest`], so the reply the core sends it is also
/// recorded in the decision log — mirroring what the DES driver's
/// requesting registry would log on its side.
fn pump(
    shared: &mut LiveShared,
    now: SimTime,
    effects: &mut Vec<CoreEffect>,
    candidate_ctx: Option<(u64, &str)>,
    out: &mut Vec<(u64, Message)>,
) {
    loop {
        let mut due = Vec::new();
        for effect in effects.drain(..) {
            match effect {
                CoreEffect::Send { to, msg } => {
                    if let (Some((conn, source)), Message::CandidateReply { dest }) =
                        (candidate_ctx, &msg)
                    {
                        if conn == to.0 {
                            shared.log.decisions.push(DecisionRecord {
                                at: now,
                                source: source.to_string(),
                                dest: dest.clone(),
                                pid: None,
                                escalated: false,
                            });
                        }
                    }
                    out.push((to.0, msg));
                }
                CoreEffect::StartDecision { source, .. } => due.push(source),
                CoreEffect::ArmTimer { timer, after } => {
                    let deadline = Instant::now() + Duration::from_secs_f64(after.as_secs_f64());
                    shared.timers.push((deadline, timer));
                }
                CoreEffect::Trace { .. } => {}
                CoreEffect::Log(log) => apply_log(&mut shared.log, log),
            }
        }
        if due.is_empty() {
            return;
        }
        for source in due {
            let mut fx = Vec::new();
            shared
                .core
                .handle(now, CoreInput::DecisionDue { source }, &mut fx);
            effects.extend(fx);
        }
    }
}

/// One live connection owned by the reactor: the non-blocking stream, its
/// incremental frame decoder, and the pending outbound bytes.
struct Conn {
    stream: TcpStream,
    frames: FrameReader,
    /// Set once negotiation resolves (used to encode replies in kind and
    /// to emit the `WireCodecNegotiated` event exactly once).
    codec: Option<WireCodecKind>,
    /// Encoded-but-unwritten reply bytes; `out_pos` is the flushed prefix.
    out: Vec<u8>,
    out_pos: usize,
    /// Peer is done (EOF/error/protocol violation); reap after the tick.
    dead: bool,
}

impl Conn {
    fn queue(&mut self, msg: &Message, options: &LiveOptions) {
        // A connection that never completed negotiation can still be
        // addressed by the core (it cannot: endpoints only exist after a
        // decoded message) — default to the paper codec defensively.
        let codec = self.codec.unwrap_or(WireCodecKind::Xml);
        encode_frame_into(msg, codec, &mut self.out);
        if self.out.len() - self.out_pos > options.max_write_buffer {
            // Backpressure rule: a peer that stopped reading does not get
            // to pin unbounded server memory. Soft state recovers it.
            self.dead = true;
        }
    }

    /// Flush pending bytes; returns true if any progress was made.
    fn flush(&mut self) -> bool {
        let mut progressed = false;
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.out_pos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos > 64 * 1024 && self.out_pos * 2 >= self.out.len() {
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        progressed
    }
}

/// The single-threaded readiness reactor behind [`LiveRegistry`].
struct Reactor {
    listener: TcpListener,
    shared: Arc<Mutex<LiveShared>>,
    stop: Arc<AtomicBool>,
    epoch: Instant,
    obs: Obs,
    options: LiveOptions,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    /// Scratch list of (connection, message) produced under the shared
    /// lock each tick, encoded into per-connection buffers after.
    outbound: Vec<(u64, Message)>,
}

/// Idle ticks at the short nap before the reactor backs off to the long
/// one (~16 ms of confirmed quiet).
const IDLE_TICKS_TO_BACKOFF: u32 = 16;
/// Nap while recently active: keeps reaction latency ~1 ms under load
/// gaps.
const IDLE_NAP_SHORT: Duration = Duration::from_millis(1);
/// Nap once confirmed idle: a parked registry costs ~100 wakeups/s
/// instead of ~1000. Any traffic resets to the short nap immediately
/// (the tick that read it doesn't sleep at all).
const IDLE_NAP_LONG: Duration = Duration::from_millis(10);

impl Reactor {
    fn run(mut self) {
        let mut rbuf = vec![0u8; 64 * 1024];
        let mut idle_ticks: u32 = 0;
        while !self.stop.load(Ordering::Relaxed) {
            let mut progressed = false;
            progressed |= self.accept_new();
            self.fire_due_timers();
            progressed |= self.drain_readable(&mut rbuf);
            self.flush_and_reap();
            if !self.outbound.is_empty() {
                progressed = true;
            }
            if progressed {
                idle_ticks = 0;
            } else {
                // Idle tick: nothing accepted, read or written. Nap
                // instead of spinning the scan loop at 100% CPU; after a
                // stretch of confirmed-idle ticks, back off to the long
                // nap so a quiet registry barely wakes at all.
                idle_ticks = idle_ticks.saturating_add(1);
                std::thread::sleep(if idle_ticks >= IDLE_TICKS_TO_BACKOFF {
                    IDLE_NAP_LONG
                } else {
                    IDLE_NAP_SHORT
                });
            }
        }
    }

    /// Accept every pending connection (the listener is non-blocking).
    fn accept_new(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    any = true;
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let conn = self.next_conn;
                    self.next_conn += 1;
                    self.obs.inc("live_connections");
                    self.conns.insert(
                        conn,
                        Conn {
                            stream,
                            frames: FrameReader::negotiating(self.options.max_frame),
                            codec: None,
                            out: Vec::new(),
                            out_pos: 0,
                            dead: false,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        any
    }

    /// Fire retransmit timers whose deadline has passed.
    fn fire_due_timers(&mut self) {
        let mut s = lock_shared(&self.shared);
        if s.timers.is_empty() {
            return;
        }
        let wall = Instant::now();
        let mut fired = Vec::new();
        s.timers.retain(|&(deadline, timer)| {
            if deadline <= wall {
                fired.push(timer);
                false
            } else {
                true
            }
        });
        let now = now_since(self.epoch);
        for timer in fired {
            let mut fx = Vec::new();
            s.core.handle(now, CoreInput::TimerFired(timer), &mut fx);
            pump(&mut s, now, &mut fx, None, &mut self.outbound);
        }
        drop(s);
        self.route_outbound();
    }

    /// Read every readable socket, decode complete frames, and feed the
    /// decoded batch through the core. Returns true if any bytes moved.
    fn drain_readable(&mut self, rbuf: &mut [u8]) -> bool {
        let mut any = false;
        // Decoded batch for this tick: (conn, decode result). Processing
        // is deferred so the shared lock is taken once per tick, not once
        // per message — that batching is what keeps 10k heartbeating
        // connections from serializing on the mutex.
        let mut batch: Vec<(u64, Result<Message, WireError>)> = Vec::new();
        let timing = self.obs.is_enabled();
        for (&conn, c) in self.conns.iter_mut() {
            if c.dead {
                continue;
            }
            loop {
                match c.stream.read(rbuf) {
                    Ok(0) => {
                        c.dead = true;
                        break;
                    }
                    Ok(n) => {
                        any = true;
                        c.frames.push(&rbuf[..n]);
                        let had_codec = c.codec.is_some();
                        loop {
                            let t0 = timing.then(Instant::now);
                            match c.frames.next_frame() {
                                Ok(Some(msg)) => {
                                    if let Some(t0) = t0 {
                                        self.obs
                                            .observe("wire_decode_s", t0.elapsed().as_secs_f64());
                                    }
                                    batch.push((conn, Ok(msg)));
                                }
                                Ok(None) => break,
                                Err(e) => {
                                    batch.push((conn, Err(e.clone())));
                                    if e.is_fatal() {
                                        c.dead = true;
                                    }
                                    if c.dead {
                                        break;
                                    }
                                }
                            }
                        }
                        if !had_codec {
                            if let Some(codec) = c.frames.codec() {
                                c.codec = Some(codec);
                                let t = now_since(self.epoch);
                                self.obs.record(t, || ObsEvent::WireCodecNegotiated {
                                    conn,
                                    codec: codec.name().to_string(),
                                });
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        c.dead = true;
                        break;
                    }
                }
                if c.dead {
                    break;
                }
            }
        }
        if !batch.is_empty() {
            self.process_batch(batch);
        }
        any
    }

    /// Feed one tick's decoded messages through the core under a single
    /// lock acquisition, collecting replies into `self.outbound`.
    fn process_batch(&mut self, batch: Vec<(u64, Result<Message, WireError>)>) {
        let out = &mut self.outbound;
        let mut s = lock_shared(&self.shared);
        for (conn, decoded) in batch {
            let now = now_since(self.epoch);
            let msg = match decoded {
                Ok(m) => m,
                Err(e) if !e.is_fatal() => {
                    // The frame was consumed; tell the peer and move on —
                    // same contract the blocking XML server had for an
                    // undecodable line.
                    out.push((
                        conn,
                        Message::Ack {
                            ok: false,
                            info: "undecodable message".to_string(),
                        },
                    ));
                    continue;
                }
                Err(_) => continue, // fatal: connection is already marked dead
            };
            let mut fx = Vec::new();
            match msg {
                Message::Register { host, role } => {
                    let name = host.name.clone();
                    s.core.handle(
                        now,
                        CoreInput::Message {
                            from: Endpoint(conn),
                            msg: Message::Register { host, role },
                        },
                        &mut fx,
                    );
                    pump(&mut s, now, &mut fx, None, out);
                    out.push((
                        conn,
                        Message::Ack {
                            ok: true,
                            info: format!("registered {name}"),
                        },
                    ));
                }
                Message::Heartbeat { .. } => {
                    let host = match &msg {
                        Message::Heartbeat { host, .. } => host.clone(),
                        _ => unreachable!("matched above"),
                    };
                    let known = s.core.knows_host(&host);
                    s.core.handle(
                        now,
                        CoreInput::Message {
                            from: Endpoint(conn),
                            msg,
                        },
                        &mut fx,
                    );
                    // Ack first: the heartbeat's caller reads exactly one
                    // reply. Anything the core pushes — a MigrationCommand
                    // to a commander connection, a ReRegister nudge to this
                    // one — follows on the respective streams afterwards.
                    out.push((
                        conn,
                        Message::Ack {
                            ok: known,
                            info: if known {
                                String::new()
                            } else {
                                format!("{host} is not registered")
                            },
                        },
                    ));
                    pump(&mut s, now, &mut fx, None, out);
                }
                Message::CandidateRequest { .. } => {
                    let source = match &msg {
                        Message::CandidateRequest { host, .. } => host.clone(),
                        _ => unreachable!("matched above"),
                    };
                    s.core.handle(
                        now,
                        CoreInput::Message {
                            from: Endpoint(conn),
                            msg,
                        },
                        &mut fx,
                    );
                    // The reply is the CandidateReply the core sends back
                    // to this connection — no transport-level ack.
                    pump(&mut s, now, &mut fx, Some((conn, source.as_str())), out);
                }
                Message::CommandAck { .. }
                | Message::MigrationComplete { .. }
                | Message::CandidateReply { .. }
                | Message::DomainReport { .. } => {
                    // Fire-and-forget inputs: feed the core, reply nothing.
                    s.core.handle(
                        now,
                        CoreInput::Message {
                            from: Endpoint(conn),
                            msg,
                        },
                        &mut fx,
                    );
                    pump(&mut s, now, &mut fx, None, out);
                }
                other => {
                    out.push((
                        conn,
                        Message::Ack {
                            ok: false,
                            info: format!("unexpected {}", other.type_tag()),
                        },
                    ));
                }
            }
        }
        drop(s);
        self.route_outbound();
    }

    /// Encode collected outbound messages into their connections' write
    /// buffers (messages to already-gone peers are dropped silently, as
    /// the blocking server did).
    fn route_outbound(&mut self) {
        for (conn, msg) in self.outbound.drain(..) {
            if let Some(c) = self.conns.get_mut(&conn) {
                c.queue(&msg, &self.options);
            }
        }
    }

    /// Flush every connection's pending bytes and reap dead connections
    /// (a dying connection still gets one final flush so a protocol-error
    /// ack has a chance to reach the peer before the close).
    fn flush_and_reap(&mut self) {
        let mut reaped = 0u64;
        self.conns.retain(|_, c| {
            c.flush();
            if c.dead {
                reaped += 1;
                false
            } else {
                true
            }
        });
        if reaped > 0 {
            self.obs.add("live_disconnects", reaped);
        }
    }
}

/// A live client connection to the registry (monitor side).
///
/// Every operation is bounded by a deadline: a registry process that dies
/// mid-call makes [`call`](LiveClient::call) return [`LiveError`] rather
/// than blocking the monitor forever. The client speaks either codec —
/// [`connect`](LiveClient::connect) keeps the paper-faithful XML default;
/// [`connect_binary`](LiveClient::connect_binary) opens the stream with
/// the binary preamble and frames everything after in binary.
pub struct LiveClient {
    stream: TcpStream,
    frames: FrameReader,
    codec: WireCodecKind,
    scratch: Vec<u8>,
    timeout: Duration,
    writes: u64,
}

impl LiveClient {
    /// Connect to a live registry with the default deadline
    /// ([`LIVE_CALL_TIMEOUT`]) for both the connect and each call, using
    /// the XML codec.
    pub fn connect(addr: SocketAddr) -> Result<LiveClient, LiveError> {
        Self::connect_with_timeout(addr, LIVE_CALL_TIMEOUT)
    }

    /// Connect with the binary codec and the default deadline.
    pub fn connect_binary(addr: SocketAddr) -> Result<LiveClient, LiveError> {
        Self::connect_with(addr, WireCodecKind::Binary, LIVE_CALL_TIMEOUT)
    }

    /// Connect with an explicit deadline applied to the connect itself and
    /// to every subsequent [`call`](LiveClient::call), using the XML codec.
    pub fn connect_with_timeout(
        addr: SocketAddr,
        timeout: Duration,
    ) -> Result<LiveClient, LiveError> {
        Self::connect_with(addr, WireCodecKind::Xml, timeout)
    }

    /// Connect with an explicit codec and deadline. A binary connection
    /// announces itself by writing [`BIN_PREAMBLE`] before its first
    /// frame; an XML connection writes nothing extra (its first `<` is the
    /// negotiation).
    pub fn connect_with(
        addr: SocketAddr,
        codec: WireCodecKind,
        timeout: Duration,
    ) -> Result<LiveClient, LiveError> {
        let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true).ok();
        if codec == WireCodecKind::Binary {
            stream.write_all(&BIN_PREAMBLE)?;
        }
        Ok(LiveClient {
            stream,
            frames: FrameReader::for_codec(codec, MAX_FRAME_BYTES),
            codec,
            scratch: Vec::new(),
            timeout,
            writes: 0,
        })
    }

    /// The codec this connection negotiated at connect time.
    pub fn codec(&self) -> WireCodecKind {
        self.codec
    }

    /// Change the per-call deadline.
    pub fn set_call_timeout(&mut self, timeout: Duration) -> Result<(), LiveError> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_write_timeout(Some(timeout))?;
        self.timeout = timeout;
        Ok(())
    }

    /// Send a message without waiting for a reply (commander-style
    /// fire-and-forget, e.g. [`Message::CommandAck`]).
    pub fn send(&mut self, msg: &Message) -> Result<(), LiveError> {
        self.scratch.clear();
        encode_frame_into(msg, self.codec, &mut self.scratch);
        self.write_scratch()
    }

    /// Send many messages as **one** stream write: every frame is encoded
    /// into the scratch buffer first, then a single `write_all` carries the
    /// burst. A monitor batching its heartbeat with pending reports pays
    /// one syscall (and, with Nagle off, typically one segment) instead of
    /// one per message. Replies still arrive one per request message —
    /// callers that batched `n` ack-carrying requests read `n` replies.
    pub fn send_batch(&mut self, msgs: &[Message]) -> Result<(), LiveError> {
        if msgs.is_empty() {
            return Ok(());
        }
        self.scratch.clear();
        for msg in msgs {
            encode_frame_into(msg, self.codec, &mut self.scratch);
        }
        self.write_scratch()
    }

    /// Stream writes this client has issued (one per [`send`](Self::send)
    /// or [`send_batch`](Self::send_batch) — diagnostics for tests that
    /// assert batching actually coalesces syscalls).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    fn write_scratch(&mut self) -> Result<(), LiveError> {
        let scratch = std::mem::take(&mut self.scratch);
        let result = self
            .stream
            .write_all(&scratch)
            .map_err(|e| self.classify(e));
        self.scratch = scratch;
        self.writes += 1;
        result
    }

    /// Read the next message the registry pushed to this connection (e.g.
    /// a [`Message::MigrationCommand`] addressed to a commander).
    pub fn recv(&mut self) -> Result<Message, LiveError> {
        let mut rbuf = [0u8; 8 * 1024];
        loop {
            match self.frames.next_frame() {
                Ok(Some(msg)) => return Ok(msg),
                Ok(None) => {}
                Err(e) => return Err(LiveError::Protocol(e.to_string())),
            }
            match self.stream.read(&mut rbuf) {
                Ok(0) => return Err(LiveError::Closed),
                Ok(n) => self.frames.push(&rbuf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(self.classify(e)),
            }
        }
    }

    /// Send a message and read the reply. Returns
    /// [`LiveError::Timeout`] when the registry goes silent past the
    /// deadline and [`LiveError::Closed`] when it hangs up.
    pub fn call(&mut self, msg: &Message) -> Result<Message, LiveError> {
        self.send(msg)?;
        self.recv()
    }

    fn classify(&self, e: std::io::Error) -> LiveError {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            LiveError::Timeout(self.timeout)
        } else {
            LiveError::Io(e)
        }
    }
}
