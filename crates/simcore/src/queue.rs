//! Deterministic future-event queue.
//!
//! A binary-heap priority queue keyed by [`SimTime`] with a monotonically
//! increasing sequence number breaking ties, so two events scheduled for the
//! same instant always fire in scheduling order regardless of heap internals.
//! Events can be cancelled lazily via the [`EventId`] returned at push time.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that the earliest (time, seq) pops first from a max-heap.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Lifecycle of a scheduled entry, indexed by its sequence number.
#[derive(Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum SeqState {
    /// Still in the heap, will fire.
    Live,
    /// Still in the heap, will be skipped.
    Cancelled,
    /// Popped (fired or skipped); `cancel` is a no-op from here on.
    Done,
}

/// The future-event list of the simulation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Per-seq lifecycle, indexed directly by seq (seqs are dense from 0, so
    /// a flat vector replaces hash lookups on the pop/cancel hot paths at the
    /// cost of one byte per event ever scheduled).
    states: Vec<SeqState>,
    /// Entries in the heap whose state is [`SeqState::Cancelled`].
    n_cancelled: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            states: Vec::new(),
            n_cancelled: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) -> EventId {
        let seq = self.states.len() as u64;
        self.states.push(SeqState::Live);
        self.heap.push(Entry { at, seq, event });
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        let slot = &mut self.states[id.0 as usize];
        if *slot == SeqState::Live {
            *slot = SeqState::Cancelled;
            self.n_cancelled += 1;
        }
    }

    /// Remove and return the earliest pending event with its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            let slot = &mut self.states[entry.seq as usize];
            let cancelled = *slot == SeqState::Cancelled;
            *slot = SeqState::Done;
            if cancelled {
                self.n_cancelled -= 1;
                continue;
            }
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Firing time of the earliest pending event, skipping cancelled ones.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.states[entry.seq as usize] == SeqState::Cancelled {
                let e = self.heap.pop().expect("peeked entry exists");
                self.states[e.seq as usize] = SeqState::Done;
                self.n_cancelled -= 1;
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of entries in the heap, including not-yet-skipped cancellations.
    #[allow(clippy::len_without_is_empty)] // is_empty needs &mut self (below)
    pub fn len(&self) -> usize {
        self.heap.len() - self.n_cancelled
    }

    /// True if no live events remain. Takes `&mut self` because checking
    /// must skip (and drop) lazily cancelled entries at the heap top.
    #[allow(clippy::wrong_self_convention)]
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3), "c");
        q.push(t(1), "a");
        q.push(t(2), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.pop(), Some((t(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(7), i)));
        }
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        let c = q.push(t(3), "c");
        q.cancel(a);
        q.cancel(c);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_pop_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert_eq!(q.pop(), Some((t(1), "a")));
        q.cancel(a); // fired already; must not affect later events
        q.push(t(2), "b");
        assert_eq!(q.pop(), Some((t(2), "b")));
    }
}
