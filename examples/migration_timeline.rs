//! The §5.2 efficiency experiment: a detailed timeline of one autonomic
//! migration — detection, decision, initialization, poll-point, state
//! transfer, resume — printed phase by phase.
//!
//! ```sh
//! cargo run --release --example migration_timeline
//! ```

use ars::prelude::*;

fn main() {
    let mut sim = Sim::new(
        (0..3)
            .map(|i| HostConfig::named(format!("ws{i}")))
            .collect(),
        SimConfig {
            trace: true,
            ..SimConfig::default()
        },
    );
    let dep = deploy(
        &mut sim,
        HostId(0),
        &[HostId(1), HostId(2)],
        DeployConfig {
            overload_confirm: SimDuration::from_secs(50),
            ..DeployConfig::default()
        },
    );

    // Ambient daemon activity (the paper's ~0.25 baseline load).
    for h in [1u32, 2] {
        sim.spawn(
            HostId(h),
            Box::new(DaemonNoise::new(0.22, 2.0)),
            SpawnOpts::named("daemons"),
        );
    }

    // Start the migration-enabled process at t = 280 s, as in the paper.
    sim.run_until(SimTime::from_secs(280));
    let cfg = TestTreeConfig {
        trees: 16,
        levels: 14,
        node_cost_build: 1.2e-3,
        node_cost_sort: 1.6e-3,
        node_cost_sum: 0.8e-3,
        chunk_nodes: 1024, // ~1.4 s per chunk at this cost — the poll spacing
        rss_kb: 73_728,    // ~72 MB image: ~6-8 s of state transfer
        seed: 4,
    };
    let app = TestTree::new(cfg);
    dep.schemas.put(MigratableApp::schema(&app));
    let hpcm = HpcmHooks::new();
    HpcmShell::spawn_on(
        &mut sim,
        HostId(1),
        app,
        HpcmConfig::default(),
        None,
        hpcm.clone(),
    );
    println!("t=280.0  test_tree started on ws1");

    // Add the load that makes ws1 overloaded.
    sim.run_until(SimTime::from_secs(300));
    for _ in 0..2 {
        sim.spawn(
            HostId(1),
            Box::new(Spinner::default()),
            SpawnOpts::named("hog"),
        );
    }
    println!("t=300.0  additional long tasks loaded onto ws1");

    sim.run_until(SimTime::from_secs(2000));

    let m = hpcm.last_migration().expect("migration happened");
    let decision = dep
        .hooks
        .0
        .borrow()
        .decisions
        .iter()
        .find(|d| d.dest.is_some())
        .cloned()
        .expect("decision");

    let resumed = m.resumed_at.expect("resumed");
    let lazy = m.lazy_done_at.expect("lazy complete");
    println!("\n--- migration timeline ---");
    println!(
        "t={:<8.3} registry decision: {} -> {} (detection {:.1} s after load)",
        decision.at.as_secs_f64(),
        decision.source,
        decision.dest.as_deref().unwrap(),
        decision.at.as_secs_f64() - 300.0
    );
    println!(
        "t={:<8.3} poll-point reached ({:.3} s after the decision)",
        m.pollpoint_at.as_secs_f64(),
        m.pollpoint_at.since(decision.at).as_secs_f64()
    );
    println!(
        "t={:<8.3} initialized process spawned on ws{} (LAM DPM ~0.3 s)",
        m.spawned_at.as_secs_f64(),
        m.to.0
    );
    println!(
        "t={:<8.3} eager state ({} B) fully sent",
        m.eager_sent_at.as_secs_f64(),
        m.eager_bytes
    );
    println!(
        "t={:<8.3} destination resumed execution ({:.2} s after the poll-point)",
        resumed.as_secs_f64(),
        resumed.since(m.pollpoint_at).as_secs_f64()
    );
    println!(
        "t={:<8.3} lazy state ({} B) fully arrived — migration complete",
        lazy.as_secs_f64(),
        m.lazy_bytes
    );
    println!(
        "\ntotal migration time: {:.2} s (paper: ~7.5 s); resume before completion: {}",
        lazy.since(m.pollpoint_at).as_secs_f64(),
        resumed < lazy
    );

    if let Some(done) = hpcm.completion_of("test_tree") {
        println!(
            "t={:<8.3} test_tree finished on ws{}",
            done.finished_at.as_secs_f64(),
            done.host.0
        );
    }
}
