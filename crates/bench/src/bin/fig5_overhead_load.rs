//! Figure 5 — rescheduler overhead on the load average.
//!
//! Prints the 1-minute load-average series with and without the
//! rescheduler, then the means and overhead percentages the paper reports
//! (1-min: 0.256 → 0.266, 3.9 %; 5-min: 0.262 → 0.263, 0.4 %; CPU
//! utilization overhead 3.46 %).

use ars_bench::overhead::{self, overhead_pct, RUN_SECS, WARMUP_SECS};
use ars_bench::{mean_between, print_series};

fn main() {
    let seed = 42;
    let without = overhead::run(false, seed);
    let with = overhead::run(true, seed);

    let mut w1 = without.load1.clone();
    let mut r1 = with.load1.clone();
    w1.set_name("load1.without");
    r1.set_name("load1.with");
    print_series(
        "Figure 5 — 1-minute load average (10 s samples)",
        &[&w1, &r1],
    );

    let (from, to) = (WARMUP_SECS as f64, RUN_SECS as f64);
    let l1_wo = mean_between(&without.load1, from, to);
    let l1_wi = mean_between(&with.load1, from, to);
    let l5_wo = mean_between(&without.load5, from, to);
    let l5_wi = mean_between(&with.load5, from, to);
    let cu_wo = mean_between(&without.cpu_util, from, to);
    let cu_wi = mean_between(&with.cpu_util, from, to);

    println!("\nmeans over t in [{from:.0}, {to:.0}) s:");
    println!(
        "  1-min load   without {:.3}  with {:.3}  overhead {:+.1}%   (paper: 0.256 -> 0.266, +3.9%)",
        l1_wo,
        l1_wi,
        overhead_pct(l1_wo, l1_wi)
    );
    println!(
        "  5-min load   without {:.3}  with {:.3}  overhead {:+.1}%   (paper: 0.262 -> 0.263, +0.4%)",
        l5_wo,
        l5_wi,
        overhead_pct(l5_wo, l5_wi)
    );
    println!(
        "  cpu util     without {:.3}  with {:.3}  overhead {:+.1}%   (paper: +3.46%)",
        cu_wo,
        cu_wi,
        overhead_pct(cu_wo, cu_wi)
    );
}
