//! The HPCM migration shell.
//!
//! [`HpcmShell`] wraps a [`MigratableApp`] as a kernel [`Program`] and
//! implements the paper's migration protocol as a *transaction* —
//! prepare → transfer → commit — that either completes on the destination
//! or rolls the application back to the poll-point it was captured at:
//!
//! 1. the commander posts the user-defined signal and writes the
//!    destination into a temp file ([`dest_file_path`]);
//! 2. at the application's next poll-point the shell reads the destination,
//!    captures the state ([`MigratableApp::save`]) and dynamically creates
//!    the *initialized process* there (a restoring shell, paying the LAM
//!    dynamic-process-management cost unless pre-initialized). **Prepare:**
//!    the source waits for the destination's READY, bounded by
//!    [`HpcmConfig::prepare_timeout`];
//! 3. **Transfer:** the eager checkpoint is framed with an integrity
//!    checksum ([`crate::codec::frame_state`]) and sent; the destination
//!    verifies, restores (rejecting corrupt state), and answers COMMIT,
//!    all bounded by [`HpcmConfig::commit_timeout`] on the source;
//! 4. **Commit:** the source installs the kernel forwarding entry,
//!    re-sends held and queued application messages to the new pid,
//!    acknowledges with COMMIT_ACK and streams the bulk remainder lazily
//!    while winding down. Only on COMMIT_ACK does the destination re-bind
//!    the MPI task identity and resume the application — so a timed-out,
//!    rolled-back source can never race a resumed destination (no double
//!    execution);
//! 5. on any deadline expiry the source kills the half-restored child,
//!    re-queues the application messages it held, and resumes the
//!    application from the poll-point (rollback). The destination aborts
//!    itself if the source goes quiet.
//!
//! Every transition is recorded: [`MigrationRecord::outcome`] ends as
//! `Committed` or `Aborted` (with a reason), never silently lost.

use crate::codec::{frame_state, unframe_state};
use crate::state::{
    dest_file_path, AppStatus, CompletionRecord, HpcmConfig, HpcmHooks, MigratableApp,
    MigrationOutcome, MigrationRecord, SavedState, MIGRATE_SIGNAL, TAG_HPCM_COMMIT,
    TAG_HPCM_COMMIT_ACK, TAG_HPCM_EAGER, TAG_HPCM_LAZY, TAG_HPCM_READY,
};
use ars_mpisim::Mpi;
use ars_obs::ObsEvent;
use ars_sim::{Ctx, Envelope, Payload, Pid, Program, RecvFilter, SpawnOpts, TraceKind, Wake};
use ars_simcore::SimDuration;

/// True for tags owned by the migration protocol itself (never delivered
/// to the application).
fn is_protocol_tag(tag: u32) -> bool {
    matches!(
        tag,
        TAG_HPCM_EAGER | TAG_HPCM_LAZY | TAG_HPCM_READY | TAG_HPCM_COMMIT | TAG_HPCM_COMMIT_ACK
    )
}

enum Mode<A> {
    /// Driving the application.
    Running { app: A },
    /// Source, prepare phase: child spawned, waiting for its READY.
    SourcePrepare {
        app: A,
        child: Pid,
        saved: SavedState,
    },
    /// Source, transfer phase: eager checkpoint send in flight.
    SourceSending {
        app: A,
        child: Pid,
        sends_left: u8,
        lazy_bytes: u64,
    },
    /// Source, transfer phase: eager sent, waiting for the COMMIT.
    SourceAwaitCommit { app: A, child: Pid, lazy_bytes: u64 },
    /// Source, commit phase: ack + forwarded messages + lazy stream in
    /// flight; exits when the last send completes. The application state
    /// now lives on the destination — no rollback from here.
    SourceCommitting { sends_left: u32 },
    /// Destination: waiting for the DPM init sleep, then the eager state.
    Restoring { waited_init: bool, source: Pid },
    /// Destination: paying the restoration cost.
    RestoreCompute { app: Option<A>, source: Pid },
    /// Destination: restored, waiting for the source's COMMIT_ACK before
    /// re-binding the task identity and resuming the application.
    AwaitCommitAck { app: Option<A>, source: Pid },
    /// Terminal.
    Done,
}

/// Migration-enabled process wrapper (see module docs).
pub struct HpcmShell<A: MigratableApp> {
    mode: Mode<A>,
    cfg: HpcmConfig,
    mpi: Option<Mpi>,
    hooks: HpcmHooks,
    /// Lazy remainder not yet confirmed received (destination side).
    pending_lazy: bool,
    /// Application messages that arrived while a transaction was in
    /// flight: forwarded to the destination on commit, re-queued into our
    /// own mailbox on rollback.
    held: Vec<Envelope>,
    /// Token of the current phase deadline; alarms with any other token
    /// are stale and ignored.
    deadline: u64,
    /// Checkpoint-send ops still in flight after a rollback; their
    /// completions must not be delivered to the application.
    protocol_sends_in_flight: u8,
}

impl<A: MigratableApp> HpcmShell<A> {
    /// Wrap a fresh application.
    pub fn launch(app: A, cfg: HpcmConfig, mpi: Option<Mpi>, hooks: HpcmHooks) -> Self {
        HpcmShell {
            mode: Mode::Running { app },
            cfg,
            mpi,
            hooks,
            pending_lazy: false,
            held: Vec::new(),
            deadline: 0,
            protocol_sends_in_flight: 0,
        }
    }

    /// The restoring (destination) side, created by the source's shell.
    fn restoring(cfg: HpcmConfig, mpi: Option<Mpi>, hooks: HpcmHooks, source: Pid) -> Self {
        HpcmShell {
            mode: Mode::Restoring {
                waited_init: false,
                source,
            },
            cfg,
            mpi,
            hooks,
            pending_lazy: true,
            held: Vec::new(),
            deadline: 0,
            protocol_sends_in_flight: 0,
        }
    }

    /// Spawn options matching an app's schema.
    fn spawn_opts(app: &A) -> SpawnOpts {
        let schema = app.schema();
        SpawnOpts::named(app.app_name())
            .migratable()
            .with_mem(schema.requirements.mem_kb, schema.requirements.mem_kb)
    }

    /// Spawn a wrapped app on a host (convenience for harnesses).
    pub fn spawn_on(
        sim: &mut ars_sim::Sim,
        host: ars_sim::HostId,
        app: A,
        cfg: HpcmConfig,
        mpi: Option<Mpi>,
        hooks: HpcmHooks,
    ) -> Pid {
        let opts = Self::spawn_opts(&app);
        let mpi_handle = mpi.clone();
        let pid = sim.spawn(host, Box::new(Self::launch(app, cfg, mpi, hooks)), opts);
        if let Some(m) = mpi_handle {
            // Register the task identity at launch (MPI_Init).
            if m.task_of(pid).is_none() {
                m.bind_new_task(pid);
            }
        }
        pid
    }

    /// Update this pid's migration record (source side keys by `pid_old`,
    /// destination side by `pid_new`).
    fn with_record(&self, me: Pid, as_source: bool, f: impl FnOnce(&mut MigrationRecord)) {
        let mut log = self.hooks.0.borrow_mut();
        let found = log.migrations.iter_mut().rev().find(|m| {
            if as_source {
                m.pid_old == me
            } else {
                m.pid_new == me
            }
        });
        if let Some(m) = found {
            f(m);
        }
    }

    /// Read a value off this pid's migration record without mutating it
    /// (observability only).
    fn peek_record<T>(
        &self,
        me: Pid,
        as_source: bool,
        f: impl FnOnce(&crate::state::MigrationRecord) -> T,
    ) -> Option<T> {
        let log = self.hooks.0.borrow();
        log.migrations
            .iter()
            .rev()
            .find(|m| {
                if as_source {
                    m.pid_old == me
                } else {
                    m.pid_new == me
                }
            })
            .map(f)
    }

    fn drive_app(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
        let Mode::Running { app } = &mut self.mode else {
            return;
        };
        let status = app.step(ctx, wake);
        match status {
            AppStatus::Finished => {
                self.hooks
                    .0
                    .borrow_mut()
                    .completions
                    .push(CompletionRecord {
                        app: app.app_name(),
                        pid: ctx.pid(),
                        host: ctx.host_id(),
                        finished_at: ctx.now(),
                        work_done: app.progress(),
                        digest: app.result_digest(),
                    });
                ctx.trace(
                    TraceKind::Custom,
                    format!("{} finished on h{}", app.app_name(), ctx.host_id().0),
                );
                self.mode = Mode::Done;
                ctx.exit();
            }
            AppStatus::Running => {
                // Poll-point: act on a pending migration signal.
                if ctx.has_signal() && app.migration_safe() {
                    let sig = ctx.take_signal().expect("signal present");
                    if sig == MIGRATE_SIGNAL {
                        self.begin_migration(ctx);
                    }
                }
            }
        }
    }

    /// Prepare phase: capture state, create the initialized process on the
    /// destination, and wait (bounded) for it to report READY.
    fn begin_migration(&mut self, ctx: &mut Ctx<'_>) {
        let Mode::Running { app } = std::mem::replace(&mut self.mode, Mode::Done) else {
            return;
        };
        let dest_name = match ctx.read_file(&dest_file_path(ctx.pid())) {
            Some(d) => d,
            None => {
                // No destination written: spurious signal; keep running.
                ctx.trace(TraceKind::Migration, "signal without destination file");
                self.mode = Mode::Running { app };
                return;
            }
        };
        let dest_host = dest_name.split(':').next().unwrap_or(&dest_name);
        let Some(dest) = ctx.host_id_by_name(dest_host) else {
            ctx.trace(
                TraceKind::Migration,
                format!("unknown destination {dest_host:?}"),
            );
            self.mode = Mode::Running { app };
            return;
        };
        ctx.remove_file(&dest_file_path(ctx.pid()));

        // Roll back to this poll-point: drop ops the app just queued.
        ctx.clear_pending_ops();
        let me = ctx.pid();

        // Capture execution + memory state at the poll-point.
        let saved = app.save();

        // Dynamically create the initialized process on the destination.
        // The task identity is NOT re-pointed yet: until the transaction
        // commits, this process owns the application and holds (then
        // forwards or re-queues) messages addressed to it.
        let child = ctx.spawn(
            dest,
            Box::new(Self::restoring(
                self.cfg.clone(),
                self.mpi.clone(),
                self.hooks.clone(),
                me,
            )),
            Self::spawn_opts(&app),
        );
        ctx.trace(
            TraceKind::Migration,
            format!(
                "pollpoint: {} h{} -> h{} ({} eager + {} lazy bytes)",
                app.app_name(),
                ctx.host_id().0,
                dest.0,
                saved.eager.len(),
                saved.lazy_bytes
            ),
        );

        self.hooks.0.borrow_mut().migrations.push(MigrationRecord {
            pid_old: me,
            pid_new: child,
            from: ctx.host_id(),
            to: dest,
            app: app.app_name(),
            pollpoint_at: ctx.now(),
            spawned_at: ctx.now(),
            eager_sent_at: ctx.now(), // updated when the send completes
            committed_at: None,
            resumed_at: None,
            lazy_done_at: None,
            eager_bytes: saved.eager.len() as u64 + 8, // framed size
            lazy_bytes: saved.lazy_bytes,
            outcome: MigrationOutcome::InFlight,
            abort_reason: None,
        });
        self.cfg.obs.inc("migrations_started");
        self.deadline = ctx.alarm(self.cfg.prepare_timeout);
        self.mode = Mode::SourcePrepare { app, child, saved };
    }

    /// Prepare done: the destination is initialized — transfer the framed
    /// eager checkpoint, with the commit deadline running.
    fn on_ready(&mut self, ctx: &mut Ctx<'_>) {
        let Mode::SourcePrepare { app, child, saved } =
            std::mem::replace(&mut self.mode, Mode::Done)
        else {
            return;
        };
        if self.cfg.obs.is_enabled() {
            let me = ctx.pid();
            let now = ctx.now();
            if let Some((t0, from, to)) =
                self.peek_record(me, true, |m| (m.pollpoint_at, m.from, m.to))
            {
                self.cfg
                    .obs
                    .observe("migration_prepare_s", now.since(t0).as_secs_f64());
                self.cfg.obs.record(now, || ObsEvent::MigrationPrepared {
                    pid: me.0,
                    from: format!("h{}", from.0),
                    to: format!("h{}", to.0),
                });
            }
        }
        let SavedState { eager, lazy_bytes } = saved;
        ctx.send(child, TAG_HPCM_EAGER, Payload::Bytes(frame_state(&eager)));
        self.deadline = ctx.alarm(self.cfg.commit_timeout);
        self.mode = Mode::SourceSending {
            app,
            child,
            sends_left: 1,
            lazy_bytes,
        };
    }

    /// Commit phase, source side: the destination restored successfully.
    /// Hand over the communication state, acknowledge, stream the lazy
    /// remainder, and wind down.
    fn commit_source(&mut self, ctx: &mut Ctx<'_>) {
        let Mode::SourceAwaitCommit {
            app: _app,
            child,
            lazy_bytes,
        } = std::mem::replace(&mut self.mode, Mode::Done)
        else {
            return;
        };
        let me = ctx.pid();
        // Communication-state transfer: in-flight messages re-route via
        // the kernel forwarding entry; held + queued messages re-send.
        // Order matters — the ack unblocks the destination, the small
        // app messages follow, the bulk stream goes last.
        ctx.set_forwarding(me, child);
        let mut sends: u32 = 1;
        ctx.send(child, TAG_HPCM_COMMIT_ACK, Payload::Empty);
        for env in self.held.drain(..) {
            ctx.forward_envelope(env, child);
            sends += 1;
        }
        for env in ctx.drain_mailbox() {
            if is_protocol_tag(env.tag) {
                continue; // e.g. a duplicated COMMIT — consumed, not forwarded
            }
            ctx.forward_envelope(env, child);
            sends += 1;
        }
        if lazy_bytes > 0 {
            ctx.send_sized(child, TAG_HPCM_LAZY, Payload::Empty, lazy_bytes);
            sends += 1;
        }
        let now = ctx.now();
        self.with_record(me, true, |m| {
            m.outcome = MigrationOutcome::Committed;
            m.committed_at = Some(now);
        });
        self.cfg.obs.inc("migrations_committed");
        if self.cfg.obs.is_enabled() {
            if let Some((sent, bytes)) =
                self.peek_record(me, true, |m| (m.eager_sent_at, m.eager_bytes))
            {
                self.cfg
                    .obs
                    .observe("migration_transfer_s", now.since(sent).as_secs_f64());
                self.cfg.obs.record(now, || ObsEvent::MigrationTransferred {
                    pid: me.0,
                    eager_bytes: bytes,
                });
            }
        }
        ctx.trace(
            TraceKind::Migration,
            format!("commit: handover to {child:?}, streaming {lazy_bytes} lazy bytes"),
        );
        self.mode = Mode::SourceCommitting { sends_left: sends };
    }

    /// Rollback, source side: kill the half-restored child, return held
    /// messages to our own mailbox, and resume the application from the
    /// poll-point it was captured at.
    fn rollback(&mut self, ctx: &mut Ctx<'_>, why: &str) {
        let (app, child, in_flight) = match std::mem::replace(&mut self.mode, Mode::Done) {
            Mode::SourcePrepare { app, child, .. } => (app, child, 0),
            Mode::SourceSending {
                app,
                child,
                sends_left,
                ..
            } => (app, child, sends_left),
            Mode::SourceAwaitCommit { app, child, .. } => (app, child, 0),
            other => {
                self.mode = other;
                return;
            }
        };
        ctx.kill(child);
        ctx.clear_pending_ops();
        self.protocol_sends_in_flight = in_flight;
        for env in self.held.drain(..) {
            ctx.requeue_envelope(env);
        }
        let me = ctx.pid();
        self.with_record(me, true, |m| {
            m.outcome = MigrationOutcome::Aborted;
            m.abort_reason = Some(why.to_string());
        });
        self.cfg.obs.inc("migrations_aborted");
        self.cfg
            .obs
            .record(ctx.now(), || ObsEvent::MigrationAborted {
                pid: me.0,
                reason: why.to_string(),
            });
        ctx.trace(
            TraceKind::Recovery,
            format!(
                "migration aborted ({why}); rolled back to poll-point on h{}",
                ctx.host_id().0
            ),
        );
        self.mode = Mode::Running { app };
        // Resume: the app re-issues the ops for its current phase.
        self.drive_app(ctx, Wake::Started);
    }

    /// Abort, destination side: the source went quiet (crashed, or rolled
    /// back and our messages to it were lost). Record the cause if nobody
    /// else settled the transaction, then disappear.
    fn abort_destination(&mut self, ctx: &mut Ctx<'_>, why: &str) {
        let me = ctx.pid();
        let mut newly_aborted = false;
        self.with_record(me, false, |m| {
            if m.outcome == MigrationOutcome::InFlight {
                m.outcome = MigrationOutcome::Aborted;
                m.abort_reason = Some(why.to_string());
                newly_aborted = true;
            }
        });
        if newly_aborted {
            self.cfg.obs.inc("migrations_aborted");
            self.cfg
                .obs
                .record(ctx.now(), || ObsEvent::MigrationAborted {
                    pid: me.0,
                    reason: why.to_string(),
                });
        }
        ctx.trace(
            TraceKind::Recovery,
            format!("destination shell aborting ({why})"),
        );
        self.mode = Mode::Done;
        // `kill`, not `exit`: we may be blocked on a receive, and a queued
        // Exit op would never start.
        ctx.kill(me);
    }
}

impl<A: MigratableApp> Program for HpcmShell<A> {
    fn on_wake(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
        // The lazy tail of our own inbound migration may still be
        // streaming; its arrival is a protocol message, not an application
        // one, and can land in any mode (we may already be a migration
        // source again). Settle it here.
        if self.pending_lazy {
            if let Wake::Received(env) = &wake {
                if env.tag == TAG_HPCM_LAZY {
                    self.pending_lazy = false;
                    let now = ctx.now();
                    let me = ctx.pid();
                    self.with_record(me, false, |m| m.lazy_done_at = Some(now));
                    ctx.trace(TraceKind::Migration, "lazy state fully received");
                    return;
                }
            }
        }
        match &mut self.mode {
            Mode::Running { .. } => {
                // Swallow completions of checkpoint sends orphaned by a
                // rollback — they are not application op completions.
                if self.protocol_sends_in_flight > 0 && matches!(wake, Wake::OpDone) {
                    self.protocol_sends_in_flight -= 1;
                    return;
                }
                // A lazy tail that arrived while we were computing sits in
                // the mailbox instead — check at every poll-point.
                if self.pending_lazy && ctx.take_message(RecvFilter::tag(TAG_HPCM_LAZY)).is_some() {
                    self.pending_lazy = false;
                    let now = ctx.now();
                    let me = ctx.pid();
                    self.with_record(me, false, |m| m.lazy_done_at = Some(now));
                    ctx.trace(TraceKind::Migration, "lazy state fully received");
                }
                // Stale protocol traffic (a duplicated READY/COMMIT after a
                // rollback, a re-sent ack…) never reaches the application.
                if matches!(&wake, Wake::Received(env) if is_protocol_tag(env.tag)) {
                    return;
                }
                self.drive_app(ctx, wake);
            }

            // --- Source side ------------------------------------------------
            Mode::SourcePrepare { child, .. } => match wake {
                Wake::Received(env) if env.tag == TAG_HPCM_READY && env.from == *child => {
                    self.on_ready(ctx);
                }
                Wake::Received(env) if !is_protocol_tag(env.tag) => self.held.push(env),
                Wake::Alarm(t) if t == self.deadline => {
                    self.rollback(ctx, "destination never initialized (prepare timeout)");
                }
                _ => {}
            },
            Mode::SourceSending {
                sends_left, child, ..
            } => match wake {
                Wake::OpDone => {
                    *sends_left -= 1;
                    let all_sent = *sends_left == 0;
                    let me = ctx.pid();
                    let now = ctx.now();
                    self.with_record(me, true, |m| {
                        if m.eager_sent_at == m.pollpoint_at {
                            m.eager_sent_at = now;
                        }
                    });
                    if all_sent {
                        let (app, child, lazy_bytes) =
                            match std::mem::replace(&mut self.mode, Mode::Done) {
                                Mode::SourceSending {
                                    app,
                                    child,
                                    lazy_bytes,
                                    ..
                                } => (app, child, lazy_bytes),
                                _ => unreachable!("matched above"),
                            };
                        self.mode = Mode::SourceAwaitCommit {
                            app,
                            child,
                            lazy_bytes,
                        };
                    }
                }
                Wake::Received(env) if env.tag == TAG_HPCM_COMMIT && env.from == *child => {
                    // Cannot happen before our send op completes (the eager
                    // state has not left yet) — but a duplicated COMMIT is
                    // consumed here so it never reaches the app.
                }
                Wake::Received(env) if !is_protocol_tag(env.tag) => self.held.push(env),
                Wake::Alarm(t) if t == self.deadline => {
                    self.rollback(ctx, "destination never restored (commit timeout)");
                }
                _ => {}
            },
            Mode::SourceAwaitCommit { child, .. } => match wake {
                Wake::Received(env) if env.tag == TAG_HPCM_COMMIT && env.from == *child => {
                    self.commit_source(ctx);
                }
                Wake::Received(env) if !is_protocol_tag(env.tag) => self.held.push(env),
                Wake::Alarm(t) if t == self.deadline => {
                    self.rollback(ctx, "destination never restored (commit timeout)");
                }
                _ => {}
            },
            Mode::SourceCommitting { sends_left } => {
                if let Wake::OpDone = wake {
                    *sends_left -= 1;
                    if *sends_left == 0 {
                        ctx.trace(TraceKind::Migration, "source state sent; exiting");
                        self.mode = Mode::Done;
                        ctx.exit();
                    }
                }
            }

            // --- Destination side -------------------------------------------
            Mode::Restoring {
                waited_init,
                source,
            } => match wake {
                Wake::Started => {
                    self.deadline = ctx.alarm(self.cfg.restore_wait_timeout);
                    if self.cfg.pre_initialized || self.cfg.dpm_init_cost.is_zero() {
                        *waited_init = true;
                        ctx.send(*source, TAG_HPCM_READY, Payload::Empty);
                        ctx.recv(RecvFilter::tag(TAG_HPCM_EAGER));
                    } else {
                        ctx.sleep(self.cfg.dpm_init_cost);
                    }
                }
                Wake::OpDone if !*waited_init => {
                    *waited_init = true;
                    ctx.send(*source, TAG_HPCM_READY, Payload::Empty);
                    ctx.recv(RecvFilter::tag(TAG_HPCM_EAGER));
                }
                Wake::Received(env) if env.tag == TAG_HPCM_EAGER => {
                    let framed = env.payload.as_bytes().unwrap_or_default();
                    let restored = unframe_state(framed)
                        .and_then(|bytes| A::restore(bytes, self.mpi.as_ref()));
                    match restored {
                        Ok(app) => {
                            let restore_work = self.cfg.restore_fixed
                                + SimDuration::from_secs_f64(
                                    framed.len() as f64 / self.cfg.restore_rate,
                                );
                            ctx.trace(
                                TraceKind::Migration,
                                format!("restoring {} ({} bytes)", app.app_name(), framed.len()),
                            );
                            // Restoration burns CPU on the destination.
                            ctx.compute(restore_work.as_secs_f64());
                            let source = *source;
                            self.mode = Mode::RestoreCompute {
                                app: Some(app),
                                source,
                            };
                        }
                        Err(e) => {
                            // Corrupt checkpoint: refuse to resurrect from
                            // garbage. The source's commit deadline will
                            // expire and roll the application back.
                            self.abort_destination(ctx, &format!("checkpoint rejected: {e}"));
                        }
                    }
                }
                Wake::Alarm(t) if t == self.deadline => {
                    self.abort_destination(ctx, "eager state never arrived");
                }
                _ => {}
            },
            Mode::RestoreCompute { app, source } => {
                if let Wake::OpDone = wake {
                    let app = app.take().expect("app restored");
                    let source = *source;
                    // Request the commit; resume only once it is granted.
                    ctx.send(source, TAG_HPCM_COMMIT, Payload::Empty);
                    self.deadline = ctx.alarm(self.cfg.restore_wait_timeout);
                    self.mode = Mode::AwaitCommitAck {
                        app: Some(app),
                        source,
                    };
                }
            }
            Mode::AwaitCommitAck { app, source } => match wake {
                Wake::Received(env) if env.tag == TAG_HPCM_COMMIT_ACK => {
                    let app = app.take().expect("app restored");
                    let source = *source;
                    let me = ctx.pid();
                    // Commit granted: communication-state transfer — the
                    // task identity now points at this process.
                    if let Some(mpi) = &self.mpi {
                        if let Some(task) = mpi.task_of(source) {
                            let _ = mpi.rebind(task, me);
                        }
                    }
                    let now = ctx.now();
                    self.with_record(me, false, |m| m.resumed_at = Some(now));
                    if self.cfg.obs.is_enabled() {
                        if let Some((old, t0, tc)) = self
                            .peek_record(me, false, |m| (m.pid_old, m.pollpoint_at, m.committed_at))
                        {
                            if let Some(tc) = tc {
                                self.cfg
                                    .obs
                                    .observe("migration_commit_s", now.since(tc).as_secs_f64());
                            }
                            self.cfg
                                .obs
                                .observe("migration_total_s", now.since(t0).as_secs_f64());
                            self.cfg.obs.record(now, || ObsEvent::MigrationCommitted {
                                pid_old: old.0,
                                pid_new: me.0,
                            });
                        }
                    }
                    ctx.trace(TraceKind::Migration, "destination resumed execution");
                    self.mode = Mode::Running { app };
                    // Resume: the app re-issues ops for its current phase.
                    self.drive_app(ctx, Wake::Started);
                }
                Wake::Alarm(t) if t == self.deadline => {
                    self.abort_destination(ctx, "commit never acknowledged");
                }
                _ => {}
            },
            Mode::Done => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
