//! Recovery latency and app-completion rate vs fault rate at
//! N ∈ {64, 256} workstations, under the chaos scenario in
//! [`ars_bench::faults`]: every app host overloads so every app must
//! migrate off while a seeded fault plan crashes hosts, stalls monitors
//! and corrupts control messages.
//!
//! Before timing anything the heaviest level is replayed at the smallest N
//! with tracing on and both traces must match line for line — faults are
//! part of the deterministic schedule, not noise. A second gate replays the
//! same run with observability *enabled* and the trace must still match:
//! recording is not allowed to perturb the simulation. Results land in
//! `BENCH_faults.json`; the observability snapshot (per-phase migration
//! latency and detector-reaction histograms) lands in `BENCH_obs.json`.

use ars_bench::faults::{
    chaos_completion, levels, registry_chaos, FaultRun, RegistryRun, RegistryTarget,
    REGISTRY_CRASH_S, RUN_S,
};
use ars_obs::Obs;

const SEED: u64 = 11;
const SIZES: [usize; 2] = [64, 256];

struct Row {
    n_hosts: usize,
    level: &'static str,
    crash_frac: f64,
    msg_drop: f64,
    run: FaultRun,
    obs: Obs,
}

struct RegRow {
    depth: usize,
    target: RegistryTarget,
    run: RegistryRun,
    obs: Obs,
}

/// Fail loudly when a registry-fault cell fired faults but the new obs
/// counters did not move: a fault-tolerance regression must not produce a
/// plausible-looking all-zero BENCH_obs.json.
fn require_registry_metrics(depth: usize, target: RegistryTarget, run: &RegistryRun, obs: &Obs) {
    let mut missing = Vec::new();
    if target != RegistryTarget::None {
        if run.registry_crashes == 0 {
            missing.push("injected registry crash".to_string());
        }
        if run.registry_recoveries == 0 {
            missing.push("injected registry recovery".to_string());
        }
        if obs.counter("faults_injected") == 0 {
            missing.push("counter faults_injected".to_string());
        }
    }
    match target {
        // A dead mid orphans its leaves: they must have re-parented, and
        // the re-parenting latency histogram must have samples.
        RegistryTarget::Mid => {
            if obs.counter("children_reparented") == 0 {
                missing.push("counter children_reparented".to_string());
            }
            match obs.histogram("reparent_delay_s") {
                None => missing.push("histogram reparent_delay_s".to_string()),
                Some(h) if h.count == 0 => {
                    missing.push("empty histogram reparent_delay_s".to_string())
                }
                Some(_) => {}
            }
        }
        // A dead root leaves its children nowhere to go: the detector must
        // still have declared it down (buffer-and-retry path).
        RegistryTarget::Root if obs.counter("parents_down") == 0 => {
            missing.push("counter parents_down".to_string());
        }
        _ => {}
    }
    assert!(
        missing.is_empty(),
        "depth {depth}, target {}: registry-fault observability missing or zero: {}",
        target.name(),
        missing.join(", ")
    );
    assert_eq!(
        run.completed,
        run.apps,
        "depth {depth}, target {}: a registry fault lost an application",
        target.name()
    );
}

/// Abort the bench if an expected metric is missing or zero — a silent
/// observability regression must not produce a plausible-looking
/// BENCH_obs.json.
fn require_metrics(n_hosts: usize, level: &str, has_faults: bool, obs: &Obs) {
    let mut missing = Vec::new();
    for c in ["migrations_started", "migrations_committed", "decisions"] {
        if obs.counter(c) == 0 {
            missing.push(format!("counter {c}"));
        }
    }
    if has_faults && obs.counter("faults_injected") == 0 {
        missing.push("counter faults_injected".to_string());
    }
    let mut histograms = vec![
        "migration_prepare_s",
        "migration_transfer_s",
        "migration_commit_s",
        "migration_total_s",
    ];
    if has_faults {
        // Crashed hosts go silent: the detector must have reacted.
        histograms.extend(["detector_suspect_s", "detector_down_s"]);
    }
    for h in histograms {
        match obs.histogram(h) {
            None => missing.push(format!("histogram {h}")),
            Some(hist) if hist.count == 0 => missing.push(format!("empty histogram {h}")),
            Some(_) => {}
        }
    }
    assert!(
        missing.is_empty(),
        "N = {n_hosts}, level {level}: observability metrics missing or zero: {}",
        missing.join(", ")
    );
}

fn main() {
    let sweep = levels();
    let heavy = sweep.last().unwrap();
    let gate_n = SIZES[0];
    println!(
        "replay gate: N = {gate_n}, level {}, tracing on",
        heavy.name
    );
    let a = chaos_completion(gate_n, SEED, heavy, true, Obs::disabled());
    let b = chaos_completion(gate_n, SEED, heavy, true, Obs::disabled());
    let (ta, tb) = (a.trace.as_ref().unwrap(), b.trace.as_ref().unwrap());
    assert_eq!(ta.len(), tb.len(), "replay trace lengths differ");
    for (i, (x, y)) in ta.iter().zip(tb).enumerate() {
        assert_eq!(x, y, "replay diverges at event {i}");
    }
    println!(
        "  identical: {} events, {}/{} apps completed under {} faults",
        ta.len(),
        a.completed,
        a.apps,
        heavy.name
    );

    println!("observability gate: same run, recording enabled");
    let session = Obs::enabled();
    let c = chaos_completion(gate_n, SEED, heavy, true, session.clone());
    let tc = c.trace.as_ref().unwrap();
    assert_eq!(
        ta.len(),
        tc.len(),
        "enabling observability changed the trace length"
    );
    for (i, (x, y)) in ta.iter().zip(tc).enumerate() {
        assert_eq!(x, y, "observability perturbed the trace at event {i}");
    }
    assert!(session.recorded() > 0, "enabled session recorded nothing");
    println!(
        "  identical: {} events, {} observability events recorded\n",
        tc.len(),
        session.recorded()
    );

    println!(
        "{:>6} {:>9} {:>7} {:>9} {:>9} {:>8} {:>7} {:>11} {:>8} {:>12}",
        "hosts",
        "level",
        "apps",
        "completed",
        "committed",
        "aborted",
        "retx",
        "recovery(s)",
        "crashes",
        "msgs dropped"
    );
    let mut rows = Vec::new();
    for &n in &SIZES {
        for level in &sweep {
            let obs = Obs::enabled();
            let run = chaos_completion(n, SEED, level, false, obs.clone());
            require_metrics(n, level.name, level.crash_frac > 0.0, &obs);
            println!(
                "{:>6} {:>9} {:>7} {:>9} {:>9} {:>8} {:>7} {:>11} {:>8} {:>12}",
                n,
                level.name,
                run.apps,
                run.completed,
                run.committed,
                run.aborted,
                run.retransmits,
                run.mean_recovery_s
                    .map(|s| format!("{s:.2}"))
                    .unwrap_or_else(|| "-".to_string()),
                run.crashes,
                run.msgs_dropped
            );
            rows.push(Row {
                n_hosts: n,
                level: level.name,
                crash_frac: level.crash_frac,
                msg_drop: level.messages.drop,
                run,
                obs,
            });
        }
    }

    // --- registry-fault family: tree depth × registry-fault level -----------
    println!("\nregistry replay gate: depth 3, mid crash, tracing on");
    let ra = registry_chaos(3, SEED, RegistryTarget::Mid, true, Obs::disabled());
    let rb = registry_chaos(3, SEED, RegistryTarget::Mid, true, Obs::disabled());
    let (tra, trb) = (ra.trace.as_ref().unwrap(), rb.trace.as_ref().unwrap());
    assert_eq!(tra.len(), trb.len(), "registry replay trace lengths differ");
    for (i, (x, y)) in tra.iter().zip(trb).enumerate() {
        assert_eq!(x, y, "registry replay diverges at event {i}");
    }
    println!(
        "  identical: {} events, {}/{} apps completed with a dead mid",
        tra.len(),
        ra.completed,
        ra.apps
    );

    println!(
        "\n{:>6} {:>7} {:>5} {:>9} {:>9} {:>8} {:>11} {:>9} {:>12} {:>10}",
        "depth",
        "target",
        "apps",
        "completed",
        "committed",
        "crashes",
        "blackholed",
        "reparent",
        "reparent(s)",
        "esc. t/o"
    );
    let mut reg_rows = Vec::new();
    for depth in [2usize, 3] {
        for target in RegistryTarget::for_depth(depth) {
            let obs = Obs::enabled();
            let run = registry_chaos(depth, SEED, target, false, obs.clone());
            require_registry_metrics(depth, target, &run, &obs);
            let reparent_mean = obs
                .histogram("reparent_delay_s")
                .and_then(|h| h.mean())
                .map(|m| format!("{m:.1}"))
                .unwrap_or_else(|| "-".to_string());
            println!(
                "{:>6} {:>7} {:>5} {:>9} {:>9} {:>8} {:>11} {:>9} {:>12} {:>10}",
                depth,
                target.name(),
                run.apps,
                run.completed,
                run.committed,
                run.registry_crashes,
                run.msgs_blackholed_registry,
                obs.counter("children_reparented"),
                reparent_mean,
                obs.counter("escalations_timed_out"),
            );
            reg_rows.push(RegRow {
                depth,
                target,
                run,
                obs,
            });
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"bench_faults\",\n");
    json.push_str(&format!(
        "  \"scenario\": \"overload + forced migration under seeded faults, {RUN_S} s simulated, seed {SEED}\",\n"
    ));
    json.push_str(&format!("  \"replay_gate_n\": {gate_n},\n"));
    json.push_str("  \"replay_deterministic\": true,\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let recovery = r
            .run
            .mean_recovery_s
            .map(|s| format!("{s:.3}"))
            .unwrap_or_else(|| "null".to_string());
        json.push_str(&format!(
            "    {{\"n_hosts\": {}, \"level\": \"{}\", \"crash_frac\": {:.2}, \
             \"msg_drop\": {:.3}, \"apps\": {}, \"completed\": {}, \
             \"completion_rate\": {:.3}, \"committed\": {}, \"aborted\": {}, \
             \"retransmits\": {}, \"commands_aborted\": {}, \
             \"mean_recovery_s\": {}, \"crashes\": {}, \"procs_killed\": {}, \
             \"msgs_dropped\": {}}}{}\n",
            r.n_hosts,
            r.level,
            r.crash_frac,
            r.msg_drop,
            r.run.apps,
            r.run.completed,
            r.run.completed as f64 / r.run.apps as f64,
            r.run.committed,
            r.run.aborted,
            r.run.retransmits,
            r.run.commands_aborted,
            recovery,
            r.run.crashes,
            r.run.procs_killed,
            r.run.msgs_dropped,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"registry_scenario\": \"fault-tolerant registry tree, one registry crashed at {REGISTRY_CRASH_S} s, {RUN_S} s simulated, seed {SEED}\",\n"
    ));
    json.push_str("  \"registry_results\": [\n");
    for (i, r) in reg_rows.iter().enumerate() {
        let reparent_mean = r
            .obs
            .histogram("reparent_delay_s")
            .and_then(|h| h.mean())
            .map(|m| format!("{m:.3}"))
            .unwrap_or_else(|| "null".to_string());
        json.push_str(&format!(
            "    {{\"depth\": {}, \"target\": \"{}\", \"apps\": {}, \
             \"completed\": {}, \"completion_rate\": {:.3}, \"committed\": {}, \
             \"registry_crashes\": {}, \"registry_recoveries\": {}, \
             \"msgs_blackholed_registry\": {}, \"children_reparented\": {}, \
             \"mean_reparent_s\": {}, \"parents_suspected\": {}, \
             \"parents_down\": {}, \"escalations_timed_out\": {}}}{}\n",
            r.depth,
            r.target.name(),
            r.run.apps,
            r.run.completed,
            r.run.completed as f64 / r.run.apps as f64,
            r.run.committed,
            r.run.registry_crashes,
            r.run.registry_recoveries,
            r.run.msgs_blackholed_registry,
            r.obs.counter("children_reparented"),
            reparent_mean,
            r.obs.counter("parents_suspected"),
            r.obs.counter("parents_down"),
            r.obs.counter("escalations_timed_out"),
            if i + 1 < reg_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_faults.json", &json).expect("write BENCH_faults.json");
    println!("\nwrote BENCH_faults.json");

    // Observability snapshot: the full metrics registry (counters plus
    // per-phase migration latency and detector-reaction histograms) for
    // every (N, level) cell, in sweep order.
    let mut obs_json = String::new();
    obs_json.push_str("{\n");
    obs_json.push_str("  \"bench\": \"bench_faults\",\n");
    obs_json.push_str(&format!(
        "  \"scenario\": \"observability snapshot of the fault sweep, {RUN_S} s simulated, seed {SEED}\",\n"
    ));
    obs_json.push_str("  \"obs_trace_identical\": true,\n");
    obs_json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        obs_json.push_str(&format!(
            "    {{\"n_hosts\": {}, \"level\": \"{}\", \"metrics\": {}}}{}\n",
            r.n_hosts,
            r.level,
            r.obs.metrics_json(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    obs_json.push_str("  ],\n");
    // The registry-fault family's snapshots: re-parenting and
    // escalation-timeout counters live in the same metrics registry, so a
    // cell where faults fired but the counters stayed absent has already
    // been rejected by `require_registry_metrics`.
    obs_json.push_str("  \"registry_results\": [\n");
    for (i, r) in reg_rows.iter().enumerate() {
        obs_json.push_str(&format!(
            "    {{\"depth\": {}, \"target\": \"{}\", \"metrics\": {}}}{}\n",
            r.depth,
            r.target.name(),
            r.obs.metrics_json(),
            if i + 1 < reg_rows.len() { "," } else { "" }
        ));
    }
    obs_json.push_str("  ]\n}\n");
    std::fs::write("BENCH_obs.json", &obs_json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");
    for r in &rows {
        let phase = |name: &str| {
            r.obs
                .histogram(name)
                .and_then(|h| h.mean())
                .map(|m| format!("{m:.2}"))
                .unwrap_or_else(|| "-".to_string())
        };
        println!(
            "  N = {:>3} {:>9}: migration prepare/transfer/commit/total mean s = {}/{}/{}/{}, detector suspect/down mean s = {}/{}",
            r.n_hosts,
            r.level,
            phase("migration_prepare_s"),
            phase("migration_transfer_s"),
            phase("migration_commit_s"),
            phase("migration_total_s"),
            phase("detector_suspect_s"),
            phase("detector_down_s"),
        );
    }

    for r in &rows {
        if r.level == "none" && r.run.completed < r.run.apps {
            eprintln!(
                "warning: N = {} lost {} app(s) with faults disabled",
                r.n_hosts,
                r.run.apps - r.run.completed
            );
        }
    }
}
