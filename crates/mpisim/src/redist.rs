//! Block-cyclic data (re)distribution — the ReSHAPE / Sudarsan-Ribbens
//! scheme the malleability layer uses when a communicator resizes.
//!
//! A global array of `len` elements is dealt out in blocks of `block`
//! contiguous elements, round-robin over `k` ranks: global index `g` lives
//! on rank `(g / block) % k`, at local index
//! `(g / (block * k)) * block + g % block`. Each rank stores its elements
//! in increasing global order, so the local image of a part is fully
//! determined by `(len, block, k, rank)`.
//!
//! Everything here is pure math over `Vec<f64>` parts — no kernel, no
//! world. [`redistribute`] recomputes the layout for a new rank count and
//! reports how many bytes actually changed owner (the wire traffic a real
//! redistribution would move), which the reconfiguration transaction both
//! charges to the network model and feeds into the
//! `redistribution_bytes` histogram.

/// Owning rank of global index `g` under a block-cyclic layout.
pub fn owner(g: usize, block: usize, k: u32) -> u32 {
    debug_assert!(block > 0 && k > 0, "degenerate layout");
    ((g / block) % k as usize) as u32
}

/// Local index of global index `g` within its owner's part.
pub fn global_to_local(g: usize, block: usize, k: u32) -> usize {
    (g / (block * k as usize)) * block + g % block
}

/// Number of elements rank `rank` owns out of a `len`-element array.
pub fn local_len(len: usize, block: usize, k: u32, rank: u32) -> usize {
    // Full cycles deal `block` elements to every rank; the tail cycle
    // deals to the lowest ranks first.
    let cycle = block * k as usize;
    let full = len / cycle;
    let tail = len % cycle;
    let start = rank as usize * block;
    full * block + tail.saturating_sub(start).min(block)
}

/// The global indices rank `rank` owns, in increasing (= local) order.
pub fn owned_globals(
    len: usize,
    block: usize,
    k: u32,
    rank: u32,
) -> impl Iterator<Item = usize> + 'static {
    let cycle = block * k as usize;
    let start = rank as usize * block;
    (0..)
        .map(move |c| c * cycle + start)
        .take_while(move |&base| base < len)
        .flat_map(move |base| base..(base + block).min(len))
}

/// Deal a global array into `k` block-cyclic parts.
pub fn decompose(global: &[f64], block: usize, k: u32) -> Vec<Vec<f64>> {
    let mut parts: Vec<Vec<f64>> = (0..k)
        .map(|r| Vec::with_capacity(local_len(global.len(), block, k, r)))
        .collect();
    for (g, &v) in global.iter().enumerate() {
        parts[owner(g, block, k) as usize].push(v);
    }
    parts
}

/// Reassemble the global array from its block-cyclic parts.
pub fn recompose(parts: &[Vec<f64>], block: usize) -> Vec<f64> {
    let k = parts.len() as u32;
    let len: usize = parts.iter().map(Vec::len).sum();
    let mut global = vec![0.0; len];
    for (rank, part) in parts.iter().enumerate() {
        for (l, &v) in part.iter().enumerate() {
            // Invert global_to_local: cycle number then in-block offset.
            let g = (l / block) * block * k as usize + rank * block + l % block;
            global[g] = v;
        }
    }
    global
}

/// Outcome of re-dealing an array from `k` to `new_k` ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct Redistribution {
    /// The new parts, one per new rank.
    pub parts: Vec<Vec<f64>>,
    /// Bytes whose owner changed (elements moved × 8).
    pub moved_bytes: u64,
    /// Per-new-rank inbound bytes (elements arriving from another rank × 8),
    /// for charging the transfer to the network model.
    pub incoming_bytes: Vec<u64>,
}

/// Re-deal block-cyclic parts onto `new_k` ranks, preserving every element
/// bit-for-bit and counting the traffic the move requires.
pub fn redistribute(parts: &[Vec<f64>], block: usize, new_k: u32) -> Redistribution {
    let k = parts.len() as u32;
    let global = recompose(parts, block);
    let new_parts = decompose(&global, block, new_k);
    let mut moved = 0u64;
    let mut incoming = vec![0u64; new_k as usize];
    for g in 0..global.len() {
        let old = owner(g, block, k);
        let new = owner(g, block, new_k);
        if old != new {
            moved += 8;
            incoming[new as usize] += 8;
        }
    }
    Redistribution {
        parts: new_parts,
        moved_bytes: moved,
        incoming_bytes: incoming,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(len: usize) -> Vec<f64> {
        (0..len).map(|i| i as f64 + 0.25).collect()
    }

    #[test]
    fn ownership_matches_decompose() {
        for &(len, block, k) in &[(10usize, 3usize, 2u32), (17, 1, 5), (64, 8, 3), (5, 7, 4)] {
            let parts = decompose(&ramp(len), block, k);
            for r in 0..k {
                assert_eq!(parts[r as usize].len(), local_len(len, block, k, r));
                let owned: Vec<usize> = owned_globals(len, block, k, r).collect();
                assert_eq!(owned.len(), parts[r as usize].len());
                for (l, g) in owned.iter().enumerate() {
                    assert_eq!(owner(*g, block, k), r);
                    assert_eq!(global_to_local(*g, block, k), l);
                    assert_eq!(parts[r as usize][l], *g as f64 + 0.25);
                }
            }
        }
    }

    #[test]
    fn recompose_inverts_decompose() {
        for &(len, block, k) in &[(0usize, 4usize, 3u32), (1, 1, 1), (100, 7, 4), (33, 16, 2)] {
            let g = ramp(len);
            assert_eq!(recompose(&decompose(&g, block, k), block), g);
        }
    }

    #[test]
    fn redistribute_preserves_data_and_counts_moves() {
        let g = ramp(40);
        let parts = decompose(&g, 4, 2);
        let r = redistribute(&parts, 4, 5);
        assert_eq!(recompose(&r.parts, 4), g);
        assert_eq!(r.incoming_bytes.iter().sum::<u64>(), r.moved_bytes);
        // Same rank count: nothing moves.
        let same = redistribute(&parts, 4, 2);
        assert_eq!(same.moved_bytes, 0);
        assert_eq!(same.parts, parts);
    }

    #[test]
    fn roundtrip_k_kprime_k_is_identity() {
        let g = ramp(57);
        let parts = decompose(&g, 3, 4);
        let out = redistribute(&redistribute(&parts, 3, 7).parts, 3, 4);
        assert_eq!(out.parts, parts);
    }
}
