//! Decode robustness: truncated and bit-flipped wire documents of every
//! message type must return `Err` (or, for flips that happen to keep the
//! document well-formed, an `Ok`) — never panic. Chaos runs deliver exactly
//! this kind of garbage to long-lived daemons.

use ars_xmlwire::{
    ApplicationSchema, EntityRole, HostState, HostStatic, Message, Metrics, ProcReport,
    ResourceRequirements,
};

fn sample_messages() -> Vec<Message> {
    let mut metrics = Metrics::new();
    metrics.set("loadAvg1", 1.25);
    metrics.set("nproc", 61.0);
    vec![
        Message::Register {
            host: HostStatic {
                name: "ws1".to_string(),
                ip: "10.0.0.1".to_string(),
                os: "linux".to_string(),
                cpu_speed: 1.2,
                n_cpus: 2,
                mem_kb: 131_072,
            },
            role: EntityRole::Monitor,
        },
        Message::Heartbeat {
            host: "ws1".to_string(),
            state: HostState::Overloaded,
            metrics,
            procs: vec![ProcReport {
                pid: 42,
                app: "test_tree".to_string(),
                start_time_s: 10.5,
                est_exec_time_s: 600.0,
            }],
        },
        Message::MigrationCommand {
            host: "ws1".to_string(),
            pid: 42,
            dest: "ws2".to_string(),
            dest_port: 7801,
            schema: ApplicationSchema::compute("test_tree", 600.0),
        },
        Message::CandidateRequest {
            host: "ws1".to_string(),
            requirements: ResourceRequirements::default(),
        },
        Message::CandidateReply {
            dest: Some("ws2".to_string()),
        },
        Message::CandidateReply { dest: None },
        Message::MigrationComplete {
            pid: 42,
            from: "ws1".to_string(),
            to: "ws2".to_string(),
            migration_time_s: 4.2,
        },
        Message::StatusQuery {
            host: "ws1".to_string(),
        },
        Message::Ack {
            ok: true,
            info: "registered ws1".to_string(),
        },
        Message::CommandAck {
            host: "ws1".to_string(),
            pid: 42,
            ok: false,
        },
        Message::ReRegister {
            host: "ws1".to_string(),
        },
    ]
}

#[test]
fn every_truncation_of_every_message_type_errors() {
    for msg in sample_messages() {
        let doc = msg.to_document();
        // Sanity: the intact document decodes back to the message.
        assert_eq!(Message::decode(&doc).unwrap(), msg);
        for n in 0..doc.len() {
            if !doc.is_char_boundary(n) {
                continue;
            }
            let cut = &doc[..n];
            assert!(
                Message::decode(cut).is_err(),
                "truncation to {n} bytes of {} decoded",
                msg.type_tag()
            );
        }
    }
}

#[test]
fn bit_flipped_documents_never_panic() {
    for msg in sample_messages() {
        let doc = msg.to_document().into_bytes();
        for i in 0..doc.len() * 8 {
            let mut bad = doc.clone();
            bad[i / 8] ^= 1 << (i % 8);
            // A flip may produce invalid UTF-8 (decode via lossy, as a
            // daemon reading a socket would) or still-well-formed XML that
            // decodes to a different message; both are fine. Panicking or
            // aborting is not.
            let text = String::from_utf8_lossy(&bad);
            let _ = Message::decode(&text);
        }
    }
}

#[test]
fn hostile_but_well_formed_documents_error_cleanly() {
    // Wrong root, missing fields, non-numeric numbers: typed errors, not
    // panics.
    for doc in [
        "<unknown-tag/>",
        "<heartbeat/>",
        "<register><host/></register>",
        "<command-ack><host>x</host><pid>not-a-number</pid><ok>maybe</ok></command-ack>",
        "<migration-command><pid>99999999999999999999999999</pid></migration-command>",
        "",
        "not xml at all",
        "<a><b></a></b>",
    ] {
        assert!(Message::decode(doc).is_err(), "{doc:?} decoded");
    }
}
