//! The reconfiguration vocabulary shared by the registry and the shell.
//!
//! A registry decision arrives at a shell as a *spec string* (written into
//! the pid's destination file by the commander, exactly like a migration
//! destination). [`Reconfiguration::parse`] turns it into the typed request
//! the transaction engine executes:
//!
//! * `"wks03"` / `"wks03:7801"` — migrate this rank to that host (the
//!   original HPCM command; the optional `:port` is the destination
//!   daemon's listen port and is irrelevant inside the simulation);
//! * `"expand:6:wks07,wks08"` — grow the application's world to 6 ranks by
//!   spawning joiners on the listed hosts (one host per new rank);
//! * `"shrink:2"` — shrink the world to 2 ranks, retiring the highest
//!   ranks after draining their block-cyclic data into the survivors.
//!
//! Keeping migration as just another [`Reconfiguration`] variant is the
//! point: the prepare → transfer → commit/rollback transaction in
//! [`crate::HpcmShell`] is written once against this enum, so malleability
//! inherits checksummed framing, destination self-abort, bounded phases
//! and rollback-to-poll-point for free.

/// One reconfiguration request, as decided by the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reconfiguration {
    /// Move this rank to `host` (classic HPCM migration).
    MigrateTo {
        /// Destination host name.
        host: String,
    },
    /// Grow the world to `new_size` ranks; `hosts[i]` receives the joiner
    /// that will become rank `old_size + i`.
    ExpandTo {
        /// Target world size (must exceed the current size).
        new_size: u32,
        /// One destination host per new rank.
        hosts: Vec<String>,
    },
    /// Shrink the world to `new_size` ranks; ranks `new_size..` retire.
    ShrinkTo {
        /// Target world size (must be ≥ 1 and below the current size).
        new_size: u32,
    },
}

impl Reconfiguration {
    /// Parse a commander spec string. Bare `host[:port]` means migrate —
    /// every pre-malleability destination file still parses to the same
    /// request it always meant.
    pub fn parse(spec: &str) -> Option<Reconfiguration> {
        if let Some(rest) = spec.strip_prefix("expand:") {
            let (size, hosts) = rest.split_once(':')?;
            let new_size: u32 = size.parse().ok()?;
            let hosts: Vec<String> = hosts
                .split(',')
                .filter(|h| !h.is_empty())
                .map(str::to_string)
                .collect();
            if hosts.is_empty() {
                return None;
            }
            Some(Reconfiguration::ExpandTo { new_size, hosts })
        } else if let Some(rest) = spec.strip_prefix("shrink:") {
            rest.parse()
                .ok()
                .map(|new_size| Reconfiguration::ShrinkTo { new_size })
        } else {
            let host = spec.split(':').next().unwrap_or(spec);
            if host.is_empty() {
                return None;
            }
            Some(Reconfiguration::MigrateTo {
                host: host.to_string(),
            })
        }
    }

    /// The spec string [`parse`](Self::parse) inverts (migrate encodes the
    /// bare host; the commander appends the port on the wire).
    pub fn encode(&self) -> String {
        match self {
            Reconfiguration::MigrateTo { host } => host.clone(),
            Reconfiguration::ExpandTo { new_size, hosts } => {
                format!("expand:{new_size}:{}", hosts.join(","))
            }
            Reconfiguration::ShrinkTo { new_size } => format!("shrink:{new_size}"),
        }
    }

    /// Short verb for traces ("migrate" / "expand" / "shrink").
    pub fn verb(&self) -> &'static str {
        match self {
            Reconfiguration::MigrateTo { .. } => "migrate",
            Reconfiguration::ExpandTo { .. } => "expand",
            Reconfiguration::ShrinkTo { .. } => "shrink",
        }
    }

    /// True for the two world-resizing variants.
    pub fn is_resize(&self) -> bool {
        !matches!(self, Reconfiguration::MigrateTo { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_host_is_migrate() {
        assert_eq!(
            Reconfiguration::parse("wks03"),
            Some(Reconfiguration::MigrateTo {
                host: "wks03".into()
            })
        );
        // Ports are stripped, matching the pre-malleability parser.
        assert_eq!(
            Reconfiguration::parse("wks03:7801"),
            Some(Reconfiguration::MigrateTo {
                host: "wks03".into()
            })
        );
        assert_eq!(Reconfiguration::parse(""), None);
    }

    #[test]
    fn expand_and_shrink_round_trip() {
        let e = Reconfiguration::ExpandTo {
            new_size: 6,
            hosts: vec!["wks07".into(), "wks08".into()],
        };
        assert_eq!(e.encode(), "expand:6:wks07,wks08");
        assert_eq!(Reconfiguration::parse(&e.encode()), Some(e));
        let s = Reconfiguration::ShrinkTo { new_size: 2 };
        assert_eq!(s.encode(), "shrink:2");
        assert_eq!(Reconfiguration::parse(&s.encode()), Some(s));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert_eq!(Reconfiguration::parse("expand:6:"), None);
        assert_eq!(Reconfiguration::parse("expand:x:wks07"), None);
        assert_eq!(Reconfiguration::parse("expand:6"), None);
        assert_eq!(Reconfiguration::parse("shrink:"), None);
        assert_eq!(Reconfiguration::parse("shrink:two"), None);
    }
}
