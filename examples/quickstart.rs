//! Quickstart: deploy the rescheduler on a small cluster, run a
//! migration-enabled job, overload its host, and watch the runtime move it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ars::prelude::*;

fn main() {
    // Four Sun-Blade-class workstations; ws0 hosts the registry/scheduler.
    let mut sim = Sim::new(
        (0..4)
            .map(|i| HostConfig::named(format!("ws{i}")))
            .collect(),
        SimConfig {
            trace: true,
            ..SimConfig::default()
        },
    );
    let dep = deploy(
        &mut sim,
        HostId(0),
        &[HostId(1), HostId(2), HostId(3)],
        DeployConfig::default(),
    );

    // A migration-enabled test_tree on ws1 (the paper's workload).
    let cfg = TestTreeConfig {
        trees: 8,
        levels: 13,
        node_cost_build: 3e-3,
        node_cost_sort: 4e-3,
        node_cost_sum: 2e-3,
        chunk_nodes: 1024,
        rss_kb: 24_576,
        seed: 1,
    };
    let expected = TestTree::expected_sum(&cfg);
    let app = TestTree::new(cfg);
    dep.schemas.put(MigratableApp::schema(&app));
    let hpcm = HpcmHooks::new();
    HpcmShell::spawn_on(
        &mut sim,
        HostId(1),
        app,
        HpcmConfig::default(),
        None,
        hpcm.clone(),
    );

    println!("t=0      test_tree started on ws1");
    sim.run_until(SimTime::from_secs(280));

    println!("t=280    injecting two CPU hogs on ws1…");
    for _ in 0..2 {
        sim.spawn(
            HostId(1),
            Box::new(Spinner::default()),
            SpawnOpts::named("hog"),
        );
    }
    sim.run_until(SimTime::from_secs(3000));

    match hpcm.last_migration() {
        Some(m) => {
            println!(
                "t={:<7.1} rescheduler migrated test_tree ws{} -> ws{}",
                m.pollpoint_at.as_secs_f64(),
                m.from.0,
                m.to.0
            );
            println!(
                "         eager {} B + lazy {} B; resumed {:.2} s after the poll-point",
                m.eager_bytes,
                m.lazy_bytes,
                m.resumed_at.unwrap().since(m.pollpoint_at).as_secs_f64()
            );
        }
        None => println!("no migration happened (unexpected)"),
    }
    match hpcm.completion_of("test_tree") {
        Some(done) => {
            println!(
                "t={:<7.1} test_tree finished on ws{} — checksum {} ({})",
                done.finished_at.as_secs_f64(),
                done.host.0,
                done.digest,
                if done.digest == expected {
                    "correct"
                } else {
                    "CORRUPTED"
                }
            );
        }
        None => println!("test_tree still running at t=3000 (unexpected)"),
    }
    println!(
        "decisions taken by the registry: {}",
        dep.hooks.decision_count()
    );
}
