//! Live mode: the rescheduler protocol over real TCP sockets.
//!
//! The paper's communication subsystem is "a custom XML based protocol with
//! TCP/IP sockets". The simulated entities exchange exactly those XML
//! documents as message payloads; this module runs the same documents over
//! real localhost sockets — a registry/scheduler server plus client-side
//! helpers — demonstrating that the wire format *and the scheduler itself*
//! are transport independent: the server is the same sans-I/O
//! [`RegistryCore`] the simulation drives, fed from socket reads and
//! replayed onto socket writes. That gives the live path everything the
//! simulated registry has — schema resource requirements, rule-policy
//! destination conditions, the missed-heartbeat failure detector, command
//! retransmits — none of which the old socket-local table implemented.
//!
//! Framing: one XML document per line (the writer emits single-line
//! documents; newline is therefore an unambiguous delimiter).

use crate::hooks::{DecisionRecord, ReschedLog, SchemaBook};
use crate::regcore::{
    CoreEffect, CoreInput, Endpoint, LogEffect, RegistryConfig, RegistryCore, TimerId,
};
use ars_rules::Policy;
use ars_simcore::SimTime;
use ars_xmlwire::Message;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Default deadline for connecting to and calling a live registry. A dead
/// registry process must surface as an error, not a hung monitor.
pub const LIVE_CALL_TIMEOUT: Duration = Duration::from_secs(5);

/// What went wrong talking to a live registry.
#[derive(Debug)]
pub enum LiveError {
    /// Could not connect, or the connection broke mid-call.
    Io(std::io::Error),
    /// The registry did not answer within the call deadline.
    Timeout(Duration),
    /// The registry closed the connection (clean EOF mid-call).
    Closed,
    /// The reply was not a decodable protocol document.
    Protocol(String),
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::Io(e) => write!(f, "registry i/o error: {e}"),
            LiveError::Timeout(d) => {
                write!(f, "registry did not reply within {:.1}s", d.as_secs_f64())
            }
            LiveError::Closed => write!(f, "registry closed the connection"),
            LiveError::Protocol(e) => write!(f, "undecodable registry reply: {e}"),
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LiveError {
    fn from(e: std::io::Error) -> Self {
        LiveError::Io(e)
    }
}

/// Write one message to a stream (newline-framed).
pub fn write_msg(stream: &mut impl Write, msg: &Message) -> std::io::Result<()> {
    let doc = msg.to_document();
    debug_assert!(!doc.contains('\n'), "documents are single-line");
    stream.write_all(doc.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Read one message from a buffered stream; `None` at EOF.
pub fn read_msg(reader: &mut impl BufRead) -> std::io::Result<Option<Message>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    Message::decode(line.trim_end())
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Everything the worker threads share: the scheduler core, its decision
/// log, the write half of every open connection (keyed by the connection
/// id that doubles as the core's [`Endpoint`]), and the armed retransmit
/// timers.
struct LiveShared {
    core: RegistryCore,
    log: ReschedLog,
    writers: HashMap<u64, TcpStream>,
    timers: Vec<(Instant, TimerId)>,
}

/// Lock the shared state, recovering from poisoning. A client handler that
/// panics mid-update leaves the mutex poisoned; one bad client must not
/// brick the registry for every later one. The core is a soft-state cache
/// refreshed by heartbeats, so the worst a recovered lock can expose is a
/// stale entry — not corruption.
fn lock_shared(shared: &Mutex<LiveShared>) -> MutexGuard<'_, LiveShared> {
    shared.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Handle to a running live registry server.
pub struct LiveRegistry {
    addr: SocketAddr,
    shared: Arc<Mutex<LiveShared>>,
    epoch: Instant,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl LiveRegistry {
    /// Start a registry server on `127.0.0.1:0` (ephemeral port) with a
    /// permissive default configuration: no destination conditions and no
    /// resource floors, i.e. any free, alive, non-source host qualifies.
    /// Use [`start_with`](Self::start_with) to schedule against a real
    /// policy and schema book.
    pub fn start() -> std::io::Result<LiveRegistry> {
        let mut cfg = RegistryConfig::new(Policy::no_migration());
        cfg.name = "live".to_string();
        Self::start_with(cfg, SchemaBook::new())
    }

    /// Start a registry server with an explicit configuration and schema
    /// book — the same [`RegistryConfig`] the simulated registry takes, so
    /// rule-policy destination conditions, resource requirements, leases
    /// and retransmit tuning all apply to live scheduling.
    pub fn start_with(cfg: RegistryConfig, schemas: SchemaBook) -> std::io::Result<LiveRegistry> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Mutex::new(LiveShared {
            core: RegistryCore::new(cfg, schemas),
            log: ReschedLog::default(),
            writers: HashMap::new(),
            timers: Vec::new(),
        }));
        let epoch = Instant::now();
        let stop = Arc::new(AtomicBool::new(false));
        let t_shared = shared.clone();
        let t_stop = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            let next_conn = AtomicU64::new(1);
            let mut workers = Vec::new();
            while !t_stop.load(Ordering::Relaxed) {
                fire_due_timers(&t_shared, epoch);
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        let conn = next_conn.fetch_add(1, Ordering::Relaxed);
                        if let Ok(writer) = stream.try_clone() {
                            lock_shared(&t_shared).writers.insert(conn, writer);
                        }
                        let shared = t_shared.clone();
                        let stop = t_stop.clone();
                        workers.push(std::thread::spawn(move || {
                            let _ = serve_client(conn, stream, &shared, &stop, epoch);
                            lock_shared(&shared).writers.remove(&conn);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(LiveRegistry {
            addr,
            shared,
            epoch,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The server's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry's clock: seconds since the server started, as the
    /// `SimTime` the core is being fed.
    pub fn now(&self) -> SimTime {
        SimTime::from_secs_f64(self.epoch.elapsed().as_secs_f64())
    }

    /// Run a read-only closure against the scheduler core and its decision
    /// log (tests/diagnostics). Takes the shared lock for the duration.
    pub fn inspect<R>(&self, f: impl FnOnce(&RegistryCore, &ReschedLog) -> R) -> R {
        let shared = lock_shared(&self.shared);
        f(&shared.core, &shared.log)
    }

    /// Snapshot of the decision log.
    pub fn log(&self) -> ReschedLog {
        self.inspect(|_, log| log.clone())
    }

    /// Stop accepting and wind down (open client connections unblock at
    /// their next message).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for LiveRegistry {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// The core's clock input: wall seconds since the server's epoch.
fn now_since(epoch: Instant) -> SimTime {
    SimTime::from_secs_f64(epoch.elapsed().as_secs_f64())
}

/// Write `msg` to connection `conn`, dropping it silently if the peer is
/// gone (its worker removes the writer on disconnect).
fn send_to(shared: &mut LiveShared, conn: u64, msg: &Message) {
    if let Some(w) = shared.writers.get_mut(&conn) {
        let _ = write_msg(w, msg);
    }
}

fn apply_log(log: &mut ReschedLog, effect: LogEffect) {
    match effect {
        LogEffect::Decision(record) => log.decisions.push(record),
        LogEffect::CommandSent => log.commands_sent += 1,
        LogEffect::CommandRetransmit => log.command_retransmits += 1,
        LogEffect::CommandAborted => log.commands_aborted += 1,
    }
}

/// Replay core effects onto the sockets. [`CoreEffect::StartDecision`] has
/// no CPU to charge here, so due decisions are fed straight back until the
/// core goes quiet. `candidate_ctx` carries the (connection, source host)
/// of an in-flight [`Message::CandidateRequest`], so the reply the core
/// sends it is also recorded in the decision log — mirroring what the DES
/// driver's requesting registry would log on its side.
fn pump(
    shared: &mut LiveShared,
    now: SimTime,
    effects: &mut Vec<CoreEffect>,
    candidate_ctx: Option<(u64, &str)>,
) {
    loop {
        let mut due = Vec::new();
        for effect in effects.drain(..) {
            match effect {
                CoreEffect::Send { to, msg } => {
                    if let (Some((conn, source)), Message::CandidateReply { dest }) =
                        (candidate_ctx, &msg)
                    {
                        if conn == to.0 {
                            shared.log.decisions.push(DecisionRecord {
                                at: now,
                                source: source.to_string(),
                                dest: dest.clone(),
                                pid: None,
                                escalated: false,
                            });
                        }
                    }
                    send_to(shared, to.0, &msg);
                }
                CoreEffect::StartDecision { source, .. } => due.push(source),
                CoreEffect::ArmTimer { timer, after } => {
                    let deadline = Instant::now() + Duration::from_secs_f64(after.as_secs_f64());
                    shared.timers.push((deadline, timer));
                }
                CoreEffect::Trace { .. } => {}
                CoreEffect::Log(log) => apply_log(&mut shared.log, log),
            }
        }
        if due.is_empty() {
            return;
        }
        for source in due {
            let mut fx = Vec::new();
            shared
                .core
                .handle(now, CoreInput::DecisionDue { source }, &mut fx);
            effects.extend(fx);
        }
    }
}

/// Fire retransmit timers whose deadline has passed (called from the
/// accept loop every few milliseconds).
fn fire_due_timers(shared: &Mutex<LiveShared>, epoch: Instant) {
    let mut s = lock_shared(shared);
    if s.timers.is_empty() {
        return;
    }
    let wall = Instant::now();
    let mut fired = Vec::new();
    s.timers.retain(|&(deadline, timer)| {
        if deadline <= wall {
            fired.push(timer);
            false
        } else {
            true
        }
    });
    let now = now_since(epoch);
    for timer in fired {
        let mut fx = Vec::new();
        s.core.handle(now, CoreInput::TimerFired(timer), &mut fx);
        pump(&mut s, now, &mut fx, None);
    }
}

fn serve_client(
    conn: u64,
    stream: TcpStream,
    shared: &Mutex<LiveShared>,
    stop: &AtomicBool,
    epoch: Instant,
) -> std::io::Result<()> {
    // Wake periodically so the stop flag is honoured even while idle. The
    // line buffer persists across timeouts, so a message split across reads
    // is never lost.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while !stop.load(Ordering::Relaxed) {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) if line.ends_with('\n') => {}
            Ok(_) => continue, // partial line; keep accumulating
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
        let msg = match Message::decode(line.trim_end()) {
            Ok(m) => m,
            Err(_) => {
                line.clear();
                let mut s = lock_shared(shared);
                send_to(
                    &mut s,
                    conn,
                    &Message::Ack {
                        ok: false,
                        info: "undecodable message".to_string(),
                    },
                );
                continue;
            }
        };
        line.clear();
        let mut s = lock_shared(shared);
        let now = now_since(epoch);
        let mut fx = Vec::new();
        match msg {
            Message::Register { host, role } => {
                let name = host.name.clone();
                s.core.handle(
                    now,
                    CoreInput::Message {
                        from: Endpoint(conn),
                        msg: Message::Register { host, role },
                    },
                    &mut fx,
                );
                pump(&mut s, now, &mut fx, None);
                send_to(
                    &mut s,
                    conn,
                    &Message::Ack {
                        ok: true,
                        info: format!("registered {name}"),
                    },
                );
            }
            Message::Heartbeat { .. } => {
                let host = match &msg {
                    Message::Heartbeat { host, .. } => host.clone(),
                    _ => unreachable!("matched above"),
                };
                let known = s.core.knows_host(&host);
                s.core.handle(
                    now,
                    CoreInput::Message {
                        from: Endpoint(conn),
                        msg,
                    },
                    &mut fx,
                );
                // Ack first: the heartbeat's caller reads exactly one
                // reply. Anything the core pushes — a MigrationCommand to
                // a commander connection, a ReRegister nudge to this one —
                // follows on the respective streams afterwards.
                send_to(
                    &mut s,
                    conn,
                    &Message::Ack {
                        ok: known,
                        info: if known {
                            String::new()
                        } else {
                            format!("{host} is not registered")
                        },
                    },
                );
                pump(&mut s, now, &mut fx, None);
            }
            Message::CandidateRequest { .. } => {
                let source = match &msg {
                    Message::CandidateRequest { host, .. } => host.clone(),
                    _ => unreachable!("matched above"),
                };
                s.core.handle(
                    now,
                    CoreInput::Message {
                        from: Endpoint(conn),
                        msg,
                    },
                    &mut fx,
                );
                // The reply is the CandidateReply the core sends back to
                // this connection — no transport-level ack.
                pump(&mut s, now, &mut fx, Some((conn, source.as_str())));
            }
            Message::CommandAck { .. }
            | Message::MigrationComplete { .. }
            | Message::CandidateReply { .. }
            | Message::DomainReport { .. } => {
                // Fire-and-forget inputs: feed the core, reply nothing.
                s.core.handle(
                    now,
                    CoreInput::Message {
                        from: Endpoint(conn),
                        msg,
                    },
                    &mut fx,
                );
                pump(&mut s, now, &mut fx, None);
            }
            other => {
                send_to(
                    &mut s,
                    conn,
                    &Message::Ack {
                        ok: false,
                        info: format!("unexpected {}", other.type_tag()),
                    },
                );
            }
        }
    }
    Ok(())
}

/// A live client connection to the registry (monitor side).
///
/// Every operation is bounded by a deadline: a registry process that dies
/// mid-call makes [`call`](LiveClient::call) return [`LiveError`] rather
/// than blocking the monitor forever.
pub struct LiveClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    timeout: Duration,
}

impl LiveClient {
    /// Connect to a live registry with the default deadline
    /// ([`LIVE_CALL_TIMEOUT`]) for both the connect and each call.
    pub fn connect(addr: SocketAddr) -> Result<LiveClient, LiveError> {
        Self::connect_with_timeout(addr, LIVE_CALL_TIMEOUT)
    }

    /// Connect with an explicit deadline applied to the connect itself and
    /// to every subsequent [`call`](LiveClient::call).
    pub fn connect_with_timeout(
        addr: SocketAddr,
        timeout: Duration,
    ) -> Result<LiveClient, LiveError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let writer = stream.try_clone()?;
        Ok(LiveClient {
            writer,
            reader: BufReader::new(stream),
            timeout,
        })
    }

    /// Change the per-call deadline.
    pub fn set_call_timeout(&mut self, timeout: Duration) -> Result<(), LiveError> {
        let stream = self.reader.get_ref();
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        self.timeout = timeout;
        Ok(())
    }

    /// Send a message without waiting for a reply (commander-style
    /// fire-and-forget, e.g. [`Message::CommandAck`]).
    pub fn send(&mut self, msg: &Message) -> Result<(), LiveError> {
        write_msg(&mut self.writer, msg).map_err(|e| self.classify(e))
    }

    /// Read the next message the registry pushed to this connection (e.g.
    /// a [`Message::MigrationCommand`] addressed to a commander).
    pub fn recv(&mut self) -> Result<Message, LiveError> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err(LiveError::Closed),
            Ok(_) => {
                Message::decode(line.trim_end()).map_err(|e| LiveError::Protocol(e.to_string()))
            }
            Err(e) => Err(self.classify(e)),
        }
    }

    /// Send a message and read the reply. Returns
    /// [`LiveError::Timeout`] when the registry goes silent past the
    /// deadline and [`LiveError::Closed`] when it hangs up.
    pub fn call(&mut self, msg: &Message) -> Result<Message, LiveError> {
        self.send(msg)?;
        self.recv()
    }

    fn classify(&self, e: std::io::Error) -> LiveError {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            LiveError::Timeout(self.timeout)
        } else {
            LiveError::Io(e)
        }
    }
}
