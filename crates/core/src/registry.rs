//! The registry/scheduler entity (§3.2) — DES driver.
//!
//! All scheduling logic lives in the transport-agnostic
//! [`RegistryCore`](crate::regcore::RegistryCore); this module is the thin
//! [`Program`] adapter that maps discrete-event-simulation wakes to core
//! inputs and replays core effects onto the kernel:
//!
//! * [`CoreEffect::Send`] → an async send op (`ctx.send`) tagged in the
//!   FIFO op queue, so its completion is attributed correctly;
//! * [`CoreEffect::StartDecision`] → a compute op charging the decision's
//!   CPU cost; the op's completion feeds [`CoreInput::DecisionDue`] back;
//! * [`CoreEffect::ArmTimer`] → a kernel alarm, with the alarm token
//!   mapped back to the core's [`TimerId`] when it fires;
//! * [`CoreEffect::Trace`] → a kernel trace line (the replayable trace the
//!   equivalence gates compare byte-for-byte);
//! * [`CoreEffect::Log`] → the shared [`ReschedHooks`] decision log.
//!
//! Effects are applied strictly in emission order, which keeps the kernel
//! trace identical to the pre-refactor monolithic scheduler.

use crate::hooks::{ReschedHooks, SchemaBook, CONTROL_TAG};
use crate::regcore::{
    CoreEffect, CoreInput, DomainHealth, Endpoint, HostEntry, LogEffect, RegistryConfig,
    RegistryCore, TimerId,
};
use ars_sim::{Ctx, Payload, Pid, Program, TraceKind, Wake, RESTART_SIGNAL};
use ars_simcore::SimTime;
use ars_xmlwire::{EntityRole, HostStatic, Message};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// What the next completed op of ours was (ops finish FIFO, so this queue
/// attributes every `OpDone` exactly).
enum OpKind {
    Send,
    Decision(Arc<str>),
}

/// The registry/scheduler program: [`RegistryCore`] driven by the DES.
pub struct RegistryScheduler {
    core: RegistryCore,
    hooks: ReschedHooks,
    /// FIFO attribution of our in-flight ops' completions.
    op_kinds: VecDeque<OpKind>,
    /// Kernel alarm token → core timer id.
    timers: HashMap<u64, TimerId>,
    /// Reusable effect buffer (no per-wake allocation in steady state).
    effects: Vec<CoreEffect>,
}

impl RegistryScheduler {
    /// Create a registry from its configuration and shared books.
    pub fn new(cfg: RegistryConfig, schemas: SchemaBook, hooks: ReschedHooks) -> Self {
        RegistryScheduler {
            core: RegistryCore::new(cfg, schemas),
            hooks,
            op_kinds: VecDeque::new(),
            timers: HashMap::new(),
            effects: Vec::new(),
        }
    }

    /// The underlying sans-I/O core (diagnostics/tests).
    pub fn core(&self) -> &RegistryCore {
        &self.core
    }

    /// Registered host entries in first-fit order (diagnostics/tests).
    pub fn entries(&self) -> &[HostEntry] {
        self.core.entries()
    }

    /// The domain's aggregate health condition (see
    /// [`RegistryCore::domain_health`]).
    pub fn domain_health(&self, now: SimTime) -> DomainHealth {
        self.core.domain_health(now)
    }

    /// Feed one input to the core and replay its effects onto the kernel.
    fn run(&mut self, ctx: &mut Ctx<'_>, input: CoreInput) {
        let mut effects = std::mem::take(&mut self.effects);
        self.core.handle(ctx.now(), input, &mut effects);
        for effect in effects.drain(..) {
            match effect {
                CoreEffect::Send { to, msg } => {
                    self.op_kinds.push_back(OpKind::Send);
                    ctx.send(Pid(to.0), CONTROL_TAG, Payload::Text(msg.to_document()));
                }
                CoreEffect::StartDecision { source, cost } => {
                    ctx.compute(cost);
                    self.op_kinds.push_back(OpKind::Decision(source));
                }
                CoreEffect::ArmTimer { timer, after } => {
                    let token = ctx.alarm(after);
                    self.timers.insert(token, timer);
                }
                CoreEffect::Trace { kind, detail } => ctx.trace(kind, detail),
                CoreEffect::Log(log) => {
                    let mut shared = self.hooks.0.borrow_mut();
                    match log {
                        LogEffect::Decision(record) => shared.decisions.push(record),
                        LogEffect::CommandSent => shared.commands_sent += 1,
                        LogEffect::CommandRetransmit => shared.command_retransmits += 1,
                        LogEffect::CommandAborted => shared.commands_aborted += 1,
                    }
                }
            }
        }
        self.effects = effects;
    }
}

impl Program for RegistryScheduler {
    fn on_wake(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
        match wake {
            Wake::Started => {
                // Register with the parent registry, if any. The host
                // description needs the simulated host id, which only the
                // driver knows — so this one send bypasses the core.
                if let Some(parent) = self.core.config().parent {
                    let msg = Message::Register {
                        host: HostStatic {
                            name: self.core.config().name.clone(),
                            ip: format!("10.1.0.{}", ctx.host_id().0 + 1),
                            os: "registry".to_string(),
                            cpu_speed: 0.0,
                            n_cpus: 0,
                            mem_kb: 0,
                        },
                        role: EntityRole::Registry,
                    };
                    self.op_kinds.push_back(OpKind::Send);
                    ctx.send(Pid(parent.0), CONTROL_TAG, Payload::Text(msg.to_document()));
                }
            }
            Wake::OpDone => match self.op_kinds.pop_front() {
                Some(OpKind::Decision(source)) => self.run(ctx, CoreInput::DecisionDue { source }),
                Some(OpKind::Send) | None => {}
            },
            Wake::Received(env) => {
                let from = env.from;
                let Some(text) = env.payload.as_text() else {
                    return;
                };
                let Ok(msg) = Message::decode(text) else {
                    ctx.trace(TraceKind::Custom, "registry: undecodable message");
                    return;
                };
                self.run(
                    ctx,
                    CoreInput::Message {
                        from: Endpoint::from(from),
                        msg,
                    },
                );
            }
            Wake::Alarm(token) => {
                // A stale token (restart cleared the pending command) maps
                // to a timer the core no longer tracks; it no-ops inside.
                if let Some(timer) = self.timers.remove(&token) {
                    self.run(ctx, CoreInput::TimerFired(timer));
                }
            }
            Wake::Signal(sig) if sig == RESTART_SIGNAL => self.run(ctx, CoreInput::Restart),
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
