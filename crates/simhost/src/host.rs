//! The simulated workstation.
//!
//! A [`Host`] composes the CPU (processor-sharing [`SharedResource`]), load
//! averages, memory, disks, a process table and a tiny key-value "filesystem"
//! (used by the commander to hand the destination address to the migrating
//! process, as the paper does with a temp file).
//!
//! The host is a passive model: the cluster simulator (`ars-sim`) owns the
//! event queue, drives `advance`, schedules load-average ticks, and reacts to
//! CPU completions.

use crate::disk::{DiskSet, Mount};
use crate::loadavg::LoadAvg;
use crate::mem::{MemUse, Memory, OutOfMemory};
use crate::procs::{ProcEntry, ProcState, ProcTable};
use ars_simcore::{JobId, SharedResource, SimTime};
use std::collections::HashMap;

/// Index of a host within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Static description of a workstation.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Hostname (unique within a cluster).
    pub name: String,
    /// CPU speed relative to the reference machine (Sun Blade 100, 500 MHz
    /// UltraSparc-IIe = 1.0). Work units are CPU-seconds on the reference.
    pub cpu_speed: f64,
    /// Number of processors.
    pub n_cpus: u32,
    /// Physical memory in kilobytes.
    pub mem_kb: u64,
    /// Swap space in kilobytes.
    pub swap_kb: u64,
    /// Mounted filesystems.
    pub mounts: Vec<Mount>,
    /// Operating system label (static registration info only).
    pub os: String,
}

impl Default for HostConfig {
    /// The paper's testbed node: Sun Blade 100, 1x UltraSparc-IIe 500 MHz,
    /// 128 MB memory, SunOS 5.8.
    fn default() -> Self {
        HostConfig {
            name: "sunblade".to_string(),
            cpu_speed: 1.0,
            n_cpus: 1,
            mem_kb: 131_072,
            swap_kb: 262_144,
            mounts: vec![Mount::new("/", 8_388_608, 2_097_152)],
            os: "SunOS 5.8".to_string(),
        }
    }
}

impl HostConfig {
    /// Convenience constructor with a name, keeping testbed defaults.
    pub fn named(name: impl Into<String>) -> Self {
        HostConfig {
            name: name.into(),
            ..Default::default()
        }
    }
}

/// A simulated workstation (see module docs).
pub struct Host {
    config: HostConfig,
    cpu: SharedResource,
    load: LoadAvg,
    mem: Memory,
    disks: DiskSet,
    procs: ProcTable,
    files: HashMap<String, String>,
    down: bool,
}

impl Host {
    /// Boot a host from its static configuration.
    pub fn new(config: HostConfig) -> Self {
        let capacity = config.cpu_speed * config.n_cpus as f64;
        Host {
            cpu: SharedResource::new(capacity),
            load: LoadAvg::new(),
            mem: Memory::new(config.mem_kb, config.swap_kb),
            disks: DiskSet::new(config.mounts.clone()),
            procs: ProcTable::new(),
            files: HashMap::new(),
            down: false,
            config,
        }
    }

    /// Static configuration.
    pub fn config(&self) -> &HostConfig {
        &self.config
    }

    /// Hostname.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    // --- Power state (fault injection) -------------------------------------

    /// Mark the host crashed or recovered. The kernel kills resident
    /// processes and refuses spawns while down; crashing also wipes the
    /// local scratch files (a reboot loses `/tmp`).
    pub fn set_down(&mut self, down: bool) {
        if down {
            self.files.clear();
        }
        self.down = down;
    }

    /// True while the host is crashed.
    pub fn is_down(&self) -> bool {
        self.down
    }

    // --- CPU ---------------------------------------------------------------

    /// Enqueue `work` CPU-seconds (reference-machine units) of computation.
    pub fn start_compute(&mut self, now: SimTime, work: f64) -> JobId {
        self.cpu.add_job(now, Some(work), 1.0)
    }

    /// Enqueue an unbounded CPU burner (e.g. a spin loop daemon).
    pub fn start_spinner(&mut self, now: SimTime) -> JobId {
        self.cpu.add_job(now, None, 1.0)
    }

    /// Remove a compute job, returning CPU-seconds it received.
    pub fn end_compute(&mut self, now: SimTime, job: JobId) -> Option<f64> {
        self.cpu.remove_job(now, job)
    }

    /// Settle CPU service up to `now`.
    pub fn advance(&mut self, now: SimTime) {
        self.cpu.advance(now);
    }

    /// Next CPU job completion, if any.
    pub fn next_cpu_completion(&self, now: SimTime) -> Option<(SimTime, JobId)> {
        self.cpu.next_completion(now)
    }

    /// CPU membership version (for lazy event invalidation).
    pub fn cpu_version(&self) -> u64 {
        self.cpu.version()
    }

    /// Jobs that have completed as of the last `advance`.
    pub fn finished_cpu_jobs(&self) -> Vec<JobId> {
        self.cpu.finished_jobs()
    }

    /// Lowest-id completed CPU job (allocation-free reaping).
    pub fn first_finished_cpu_job(&self) -> Option<JobId> {
        self.cpu.first_finished_job()
    }

    /// Length of the run queue (jobs actively consuming CPU).
    pub fn run_queue(&self) -> usize {
        self.cpu.active_len()
    }

    /// Cumulative CPU busy time in seconds (the `vmstat` counter).
    pub fn cpu_busy_secs(&self) -> f64 {
        self.cpu.busy_secs()
    }

    // --- Load averages -----------------------------------------------------

    /// Kernel 5-second load sample; the cluster simulator calls this on a
    /// periodic tick. The run queue counts jobs actively consuming CPU
    /// *plus* table entries still marked runnable — a process whose burst
    /// ends exactly on the tick is still on the queue, which matters when
    /// compute chunks align with the sampling period.
    pub fn sample_load(&mut self, now: SimTime) {
        let n = self.run_queue().max(self.procs.runnable());
        self.load.sample(now, n);
    }

    /// Load averages (1, 5, 15 minutes).
    pub fn load_avg(&self) -> (f64, f64, f64) {
        (self.load.one(), self.load.five(), self.load.fifteen())
    }

    // --- Memory / disks ----------------------------------------------------

    /// Reserve memory for a pid.
    pub fn mem_reserve(&mut self, pid: u64, use_: MemUse) -> Result<(), OutOfMemory> {
        self.mem.reserve(pid, use_)
    }

    /// Release a pid's memory.
    pub fn mem_release(&mut self, pid: u64) {
        self.mem.release(pid);
    }

    /// Memory state.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Disk state.
    pub fn disks(&self) -> &DiskSet {
        &self.disks
    }

    /// Mutable disk state.
    pub fn disks_mut(&mut self) -> &mut DiskSet {
        &mut self.disks
    }

    // --- Process table -----------------------------------------------------

    /// Register a process with the host `ps` table.
    pub fn proc_add(&mut self, entry: ProcEntry) {
        let pid = entry.pid;
        self.procs.add(entry);
        // New processes start with no memory reserved; callers set it.
        let _ = pid;
    }

    /// Remove a process from the table (releasing its memory).
    pub fn proc_remove(&mut self, pid: u64) -> Option<ProcEntry> {
        self.mem.release(pid);
        self.procs.remove(pid)
    }

    /// Update a process's scheduling state.
    pub fn proc_set_state(&mut self, pid: u64, state: ProcState) {
        self.procs.set_state(pid, state);
    }

    /// The process table.
    pub fn procs(&self) -> &ProcTable {
        &self.procs
    }

    // --- Files (commander <-> migrating process handoff) --------------------

    /// Write a host-local file (overwrites).
    pub fn write_file(&mut self, path: impl Into<String>, content: impl Into<String>) {
        self.files.insert(path.into(), content.into());
    }

    /// Read a host-local file.
    pub fn read_file(&self, path: &str) -> Option<&str> {
        self.files.get(path).map(String::as_str)
    }

    /// Remove a host-local file; returns its content if it existed.
    pub fn remove_file(&mut self, path: &str) -> Option<String> {
        self.files.remove(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn default_config_is_the_testbed_node() {
        let c = HostConfig::default();
        assert_eq!(c.n_cpus, 1);
        assert_eq!(c.mem_kb, 131_072);
        assert_eq!(c.os, "SunOS 5.8");
    }

    #[test]
    fn compute_shares_cpu() {
        let mut h = Host::new(HostConfig::default());
        let _a = h.start_compute(t(0.0), 10.0);
        let _b = h.start_compute(t(0.0), 10.0);
        assert_eq!(h.run_queue(), 2);
        let (done, _) = h.next_cpu_completion(t(0.0)).unwrap();
        assert_eq!(done, t(20.0)); // shared: both finish at 20 s
    }

    #[test]
    fn fast_host_finishes_sooner() {
        let cfg = HostConfig {
            cpu_speed: 2.0,
            ..HostConfig::default()
        };
        let mut h = Host::new(cfg);
        h.start_compute(t(0.0), 10.0);
        let (done, _) = h.next_cpu_completion(t(0.0)).unwrap();
        assert_eq!(done, t(5.0));
    }

    #[test]
    fn load_average_follows_run_queue() {
        let mut h = Host::new(HostConfig::default());
        h.start_spinner(t(0.0));
        h.start_spinner(t(0.0));
        let mut s = 0u64;
        while s < 600 {
            s += 5;
            h.advance(t(s as f64));
            h.sample_load(t(s as f64));
        }
        let (la1, la5, _) = h.load_avg();
        assert!((la1 - 2.0).abs() < 0.01, "la1={la1}");
        assert!((la5 - 2.0).abs() < 0.3, "la5={la5}");
    }

    #[test]
    fn busy_secs_accumulate_only_under_load() {
        let mut h = Host::new(HostConfig::default());
        let j = h.start_compute(t(0.0), 3.0);
        h.advance(t(10.0));
        assert!((h.cpu_busy_secs() - 3.0).abs() < 1e-9);
        h.end_compute(t(10.0), j);
        h.advance(t(20.0));
        assert!((h.cpu_busy_secs() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn proc_table_and_memory_lifecycle() {
        let mut h = Host::new(HostConfig::default());
        h.proc_add(ProcEntry {
            pid: 7,
            name: "test_tree".into(),
            start_time: t(1.0),
            state: ProcState::Runnable,
            migratable: true,
        });
        h.mem_reserve(
            7,
            MemUse {
                rss_kb: 1000,
                vsz_kb: 1000,
            },
        )
        .unwrap();
        assert_eq!(h.mem().phys_avail_kb(), 131_072 - 1000);
        let gone = h.proc_remove(7).unwrap();
        assert_eq!(gone.pid, 7);
        assert_eq!(h.mem().phys_avail_kb(), 131_072);
    }

    #[test]
    fn files_roundtrip() {
        let mut h = Host::new(HostConfig::default());
        h.write_file("/tmp/hpcm_dest", "host4:7801");
        assert_eq!(h.read_file("/tmp/hpcm_dest"), Some("host4:7801"));
        assert_eq!(h.remove_file("/tmp/hpcm_dest").unwrap(), "host4:7801");
        assert_eq!(h.read_file("/tmp/hpcm_dest"), None);
    }
}
