//! Property-based tests for the simulation kernel invariants.

use ars_simcore::{EventQueue, SharedResource, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// The event queue always pops in non-decreasing (time, insertion) order.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "order violated");
            }
            last = Some((t, i));
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn queue_cancellation_exact(
        times in proptest::collection::vec(0u64..1000, 1..100),
        mask in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.push(SimTime::from_micros(t), i))
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if mask[i % mask.len()] {
                q.cancel(*id);
            } else {
                expect.push(i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, i)) = q.pop() {
            popped.push(i);
        }
        popped.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(popped, expect);
    }

    /// Work conservation: after arbitrary arrivals and settlements, the total
    /// service delivered equals capacity x busy time (within float noise).
    #[test]
    fn resource_conserves_work(
        capacity in 0.1f64..100.0,
        arrivals in proptest::collection::vec((0u64..100_000_000, 0.01f64..50.0), 1..40),
    ) {
        let mut r = SharedResource::new(capacity);
        let mut evs: Vec<(u64, f64)> = arrivals;
        evs.sort_by_key(|&(t, _)| t);
        for &(t, amount) in &evs {
            r.add_job(SimTime::from_micros(t), Some(amount), 1.0);
        }
        let end = SimTime::from_micros(200_000_000);
        r.advance(end);
        let served = r.served_total();
        let cap_busy = capacity * r.busy_secs();
        prop_assert!((served - cap_busy).abs() < 1e-6 * (1.0 + cap_busy),
            "served {} vs capacity*busy {}", served, cap_busy);
    }

    /// No job is served more than its requested amount.
    #[test]
    fn resource_never_overserves(
        amounts in proptest::collection::vec(0.01f64..20.0, 1..20),
    ) {
        let mut r = SharedResource::new(1.0);
        let ids: Vec<_> = amounts
            .iter()
            .map(|&a| r.add_job(SimTime::ZERO, Some(a), 1.0))
            .collect();
        // Advance far enough that all jobs are done.
        let total: f64 = amounts.iter().sum();
        r.advance(SimTime::from_secs_f64(total + 1.0));
        for (id, &a) in ids.iter().zip(&amounts) {
            let served = r.remove_job(SimTime::from_secs_f64(total + 1.0), *id).unwrap();
            prop_assert!(served <= a + 1e-6, "served {} > amount {}", served, a);
        }
    }

    /// RNG stream depends only on the seed.
    #[test]
    fn rng_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// `below(n)` is always within range for any n, seed.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..u64::MAX) {
        let mut r = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert!(r.below(n) < n);
        }
    }
}
