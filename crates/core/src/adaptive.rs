//! Self-adjustment of the overload-confirmation window (the paper's §6
//! future work: "the system can take feedbacks from the scheduling and
//! performance history, and automatically improve its accuracy and
//! efficiency").
//!
//! The monitor watches its own overload episodes:
//!
//! * an episode that *subsides on its own* shortly after confirmation would
//!   have been a **false migration** — the window grows;
//! * an episode that persists long past confirmation means detection was
//!   **late** — the window shrinks.
//!
//! Multiplicative increase / decrease between configurable bounds keeps the
//! window stable once the workload's time scale is learned.

use ars_simcore::{SimDuration, SimTime};

/// Tuning constants for the adaptive window.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Lower bound of the window.
    pub min: SimDuration,
    /// Upper bound of the window.
    pub max: SimDuration,
    /// Growth factor applied when an episode proves transient.
    pub grow: f64,
    /// Shrink factor applied when an episode proves persistent.
    pub shrink: f64,
    /// An overload that clears within this long after confirmation counts
    /// as transient.
    pub transient_within: SimDuration,
    /// An overload still present this long after confirmation counts as
    /// persistent.
    pub persistent_after: SimDuration,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min: SimDuration::from_secs(15),
            max: SimDuration::from_secs(240),
            grow: 1.5,
            shrink: 0.8,
            transient_within: SimDuration::from_secs(30),
            persistent_after: SimDuration::from_secs(90),
        }
    }
}

/// State of one monitor's adaptive window (see module docs).
#[derive(Debug, Clone)]
pub struct AdaptiveConfirm {
    cfg: AdaptiveConfig,
    window: SimDuration,
    /// When the current episode was confirmed (reported overloaded).
    confirmed_at: Option<SimTime>,
    /// Whether the persistent adjustment already fired for this episode.
    adjusted_this_episode: bool,
    /// Episodes judged transient (diagnostics).
    pub transients_seen: u32,
    /// Episodes judged persistent (diagnostics).
    pub persistents_seen: u32,
}

impl AdaptiveConfirm {
    /// Start with an initial window.
    pub fn new(initial: SimDuration, cfg: AdaptiveConfig) -> Self {
        AdaptiveConfirm {
            window: clamp(initial, &cfg),
            cfg,
            confirmed_at: None,
            adjusted_this_episode: false,
            transients_seen: 0,
            persistents_seen: 0,
        }
    }

    /// The current confirmation window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// The monitor reports that it just *confirmed* an overload at `now`.
    pub fn on_confirmed(&mut self, now: SimTime) {
        self.confirmed_at = Some(now);
        self.adjusted_this_episode = false;
    }

    /// The monitor observed the raw overload condition still holding at
    /// `now`. Call on every overloaded sample.
    pub fn on_still_overloaded(&mut self, now: SimTime) {
        if self.adjusted_this_episode {
            return;
        }
        if let Some(at) = self.confirmed_at {
            if now.since(at) >= self.cfg.persistent_after {
                // Detection was late: react faster next time.
                self.window = clamp(self.window.mul_f64(self.cfg.shrink), &self.cfg);
                self.persistents_seen += 1;
                self.adjusted_this_episode = true;
            }
        }
    }

    /// The monitor observed the overload *clearing* at `now` (the raw state
    /// dropped back below the trigger).
    pub fn on_cleared(&mut self, now: SimTime) {
        if let Some(at) = self.confirmed_at.take() {
            if !self.adjusted_this_episode && now.since(at) <= self.cfg.transient_within {
                // The episode would not have deserved a migration: demand
                // more persistence next time.
                self.window = clamp(self.window.mul_f64(self.cfg.grow), &self.cfg);
                self.transients_seen += 1;
            }
        }
        self.adjusted_this_episode = false;
    }
}

fn clamp(d: SimDuration, cfg: &AdaptiveConfig) -> SimDuration {
    d.max(cfg.min).min(cfg.max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn secs(d: SimDuration) -> f64 {
        d.as_secs_f64()
    }

    #[test]
    fn transient_episode_grows_the_window() {
        let mut a = AdaptiveConfirm::new(SimDuration::from_secs(60), AdaptiveConfig::default());
        a.on_confirmed(t(100));
        a.on_cleared(t(110)); // cleared 10 s after confirmation: transient
        assert!((secs(a.window()) - 90.0).abs() < 1e-9);
        assert_eq!(a.transients_seen, 1);
    }

    #[test]
    fn persistent_episode_shrinks_the_window() {
        let mut a = AdaptiveConfirm::new(SimDuration::from_secs(60), AdaptiveConfig::default());
        a.on_confirmed(t(100));
        a.on_still_overloaded(t(150)); // not yet persistent
        assert!((secs(a.window()) - 60.0).abs() < 1e-9);
        a.on_still_overloaded(t(195)); // 95 s after confirmation
        assert!((secs(a.window()) - 48.0).abs() < 1e-9);
        assert_eq!(a.persistents_seen, 1);
        // Only one adjustment per episode.
        a.on_still_overloaded(t(400));
        assert!((secs(a.window()) - 48.0).abs() < 1e-9);
    }

    #[test]
    fn late_clear_is_not_transient() {
        let mut a = AdaptiveConfirm::new(SimDuration::from_secs(60), AdaptiveConfig::default());
        a.on_confirmed(t(100));
        a.on_cleared(t(170)); // 70 s after confirmation: neither bucket
        assert!((secs(a.window()) - 60.0).abs() < 1e-9);
        assert_eq!(a.transients_seen, 0);
    }

    #[test]
    fn window_respects_bounds() {
        let cfg = AdaptiveConfig::default();
        let mut a = AdaptiveConfirm::new(SimDuration::from_secs(200), cfg.clone());
        for i in 0..20 {
            a.on_confirmed(t(1000 + i * 100));
            a.on_cleared(t(1005 + i * 100));
        }
        assert_eq!(a.window(), cfg.max);
        let mut b = AdaptiveConfirm::new(SimDuration::from_secs(20), cfg.clone());
        for i in 0..20 {
            b.on_confirmed(t(1000 + i * 1000));
            b.on_still_overloaded(t(1000 + i * 1000 + 95));
            b.on_cleared(t(1000 + i * 1000 + 500));
        }
        assert_eq!(b.window(), cfg.min);
    }

    #[test]
    fn converges_under_mixed_history() {
        // Alternating transient/persistent episodes leave the window near
        // where grow and shrink balance (1.5 * 0.8 = 1.2 per pair, clamped).
        let mut a = AdaptiveConfirm::new(SimDuration::from_secs(60), AdaptiveConfig::default());
        for i in 0..50u64 {
            let base = 1000 + i * 1000;
            a.on_confirmed(t(base));
            if i % 2 == 0 {
                a.on_cleared(t(base + 10));
            } else {
                a.on_still_overloaded(t(base + 95));
                a.on_cleared(t(base + 500));
            }
        }
        assert!(a.window() <= AdaptiveConfig::default().max);
        assert!(a.window() >= AdaptiveConfig::default().min);
        assert!(a.transients_seen > 0 && a.persistents_seen > 0);
    }
}
