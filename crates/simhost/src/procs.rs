//! Host process table — the simulated `ps`/`prstat` view.
//!
//! The rescheduler selects the process to migrate from "the start time of the
//! process" (the `pid` file time-stamp in the paper) and the application
//! schema; rules condition on "the number of processes per processor". Both
//! read this table.

use ars_simcore::SimTime;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Scheduling state of a process as seen by `ps`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// On the run queue (consuming CPU).
    Runnable,
    /// Blocked on I/O, a message, or a timer.
    Sleeping,
}

/// One row of the process table.
#[derive(Debug, Clone)]
pub struct ProcEntry {
    /// Simulator-wide process id.
    pub pid: u64,
    /// Executable name (interned: cloning a row never copies the bytes).
    pub name: Arc<str>,
    /// Time the process started on *this* host (the pid-file timestamp).
    pub start_time: SimTime,
    /// Current scheduling state.
    pub state: ProcState,
    /// True for HPCM migration-enabled processes.
    pub migratable: bool,
}

/// The process table of one host.
#[derive(Debug, Clone, Default)]
pub struct ProcTable {
    entries: BTreeMap<u64, ProcEntry>,
}

impl ProcTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a process. Replaces any stale entry with the same pid.
    pub fn add(&mut self, entry: ProcEntry) {
        self.entries.insert(entry.pid, entry);
    }

    /// Remove a process; returns the removed entry if present.
    pub fn remove(&mut self, pid: u64) -> Option<ProcEntry> {
        self.entries.remove(&pid)
    }

    /// Look up a process.
    pub fn get(&self, pid: u64) -> Option<&ProcEntry> {
        self.entries.get(&pid)
    }

    /// Update the scheduling state of a process (no-op for unknown pids).
    pub fn set_state(&mut self, pid: u64, state: ProcState) {
        if let Some(e) = self.entries.get_mut(&pid) {
            e.state = state;
        }
    }

    /// Total number of processes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no processes exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of runnable processes.
    pub fn runnable(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.state == ProcState::Runnable)
            .count()
    }

    /// Iterate over all entries in pid order.
    pub fn iter(&self) -> impl Iterator<Item = &ProcEntry> {
        self.entries.values()
    }

    /// Migration-enabled processes, in pid order.
    pub fn migratable(&self) -> Vec<&ProcEntry> {
        self.entries.values().filter(|e| e.migratable).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pid: u64, migratable: bool, start_s: u64) -> ProcEntry {
        ProcEntry {
            pid,
            name: format!("proc{pid}").into(),
            start_time: SimTime::from_secs(start_s),
            state: ProcState::Runnable,
            migratable,
        }
    }

    #[test]
    fn add_get_remove() {
        let mut t = ProcTable::new();
        t.add(entry(1, false, 0));
        t.add(entry(2, true, 5));
        assert_eq!(t.len(), 2);
        assert!(t.get(1).is_some());
        assert_eq!(t.remove(1).unwrap().pid, 1);
        assert!(t.get(1).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn runnable_count_tracks_state() {
        let mut t = ProcTable::new();
        t.add(entry(1, false, 0));
        t.add(entry(2, false, 0));
        assert_eq!(t.runnable(), 2);
        t.set_state(1, ProcState::Sleeping);
        assert_eq!(t.runnable(), 1);
        t.set_state(1, ProcState::Runnable);
        assert_eq!(t.runnable(), 2);
    }

    #[test]
    fn migratable_filter() {
        let mut t = ProcTable::new();
        t.add(entry(1, false, 0));
        t.add(entry(2, true, 3));
        t.add(entry(3, true, 7));
        let m = t.migratable();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].pid, 2);
        assert_eq!(m[1].pid, 3);
    }

    #[test]
    fn set_state_unknown_pid_is_noop() {
        let mut t = ProcTable::new();
        t.set_state(9, ProcState::Sleeping);
        assert!(t.is_empty());
    }

    #[test]
    fn re_add_replaces() {
        let mut t = ProcTable::new();
        t.add(entry(1, false, 0));
        t.add(entry(1, true, 10));
        assert_eq!(t.len(), 1);
        assert!(t.get(1).unwrap().migratable);
    }
}
