//! Behavioural tests of the cluster-simulator kernel: op execution,
//! messaging, signals, spawning, forwarding, and determinism.

use ars_sim::{
    Ctx, Envelope, HostId, Payload, Pid, Program, RecvFilter, Sim, SimConfig, SpawnOpts, Wake,
};
use ars_simcore::{SimDuration, SimTime};
use ars_simhost::HostConfig;
use std::any::Any;

fn two_hosts() -> Sim {
    Sim::new(
        vec![HostConfig::named("ws1"), HostConfig::named("ws2")],
        SimConfig::default(),
    )
}

fn t(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

/// Runs a fixed compute burst then exits, recording its finish time.
struct Cruncher {
    work: f64,
    finished_at: Option<SimTime>,
}

impl Program for Cruncher {
    fn on_wake(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
        match wake {
            Wake::Started => ctx.compute(self.work),
            Wake::OpDone => {
                self.finished_at = Some(ctx.now());
                ctx.exit();
            }
            _ => {}
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn lone_compute_takes_its_work_time() {
    let mut sim = two_hosts();
    let pid = sim.spawn(
        HostId(0),
        Box::new(Cruncher {
            work: 10.0,
            finished_at: None,
        }),
        SpawnOpts::named("crunch"),
    );
    sim.run_until(t(100.0));
    assert!(!sim.is_alive(pid));
    assert_eq!(sim.exited_at(pid), Some(t(10.0)));
}

#[test]
fn two_crunchers_share_the_cpu() {
    let mut sim = two_hosts();
    let a = sim.spawn(
        HostId(0),
        Box::new(Cruncher {
            work: 10.0,
            finished_at: None,
        }),
        SpawnOpts::named("a"),
    );
    let b = sim.spawn(
        HostId(0),
        Box::new(Cruncher {
            work: 10.0,
            finished_at: None,
        }),
        SpawnOpts::named("b"),
    );
    sim.run_until(t(100.0));
    // Processor sharing: both finish at 20 s.
    assert_eq!(sim.exited_at(a), Some(t(20.0)));
    assert_eq!(sim.exited_at(b), Some(t(20.0)));
}

#[test]
fn crunchers_on_different_hosts_do_not_interfere() {
    let mut sim = two_hosts();
    let a = sim.spawn(
        HostId(0),
        Box::new(Cruncher {
            work: 10.0,
            finished_at: None,
        }),
        SpawnOpts::named("a"),
    );
    let b = sim.spawn(
        HostId(1),
        Box::new(Cruncher {
            work: 10.0,
            finished_at: None,
        }),
        SpawnOpts::named("b"),
    );
    sim.run_until(t(100.0));
    assert_eq!(sim.exited_at(a), Some(t(10.0)));
    assert_eq!(sim.exited_at(b), Some(t(10.0)));
}

/// Sends one message to a peer, then exits.
struct Sender {
    to: Pid,
    bytes: u64,
    text: String,
    sent_at: Option<SimTime>,
}

impl Program for Sender {
    fn on_wake(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
        match wake {
            Wake::Started => {
                ctx.send_sized(self.to, 7, Payload::Text(self.text.clone()), self.bytes);
            }
            Wake::OpDone => {
                self.sent_at = Some(ctx.now());
                ctx.exit();
            }
            _ => {}
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Receives one message, records when and what, then exits.
struct Receiver {
    filter: RecvFilter,
    got: Option<(SimTime, Envelope)>,
}

impl Program for Receiver {
    fn on_wake(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
        match wake {
            Wake::Started => ctx.recv(self.filter),
            Wake::Received(env) => {
                self.got = Some((ctx.now(), env));
                ctx.exit();
            }
            _ => {}
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn remote_message_time_is_latency_plus_bandwidth() {
    let mut sim = two_hosts();
    let rx = sim.spawn(
        HostId(1),
        Box::new(Receiver {
            filter: RecvFilter::any(),
            got: None,
        }),
        SpawnOpts::named("rx"),
    );
    // 12.5 MB over a 12.5 MB/s NIC = 1 s wire time + 300 us latency.
    let tx = sim.spawn(
        HostId(0),
        Box::new(Sender {
            to: rx,
            bytes: 12_500_000,
            text: "bulk".to_string(),
            sent_at: None,
        }),
        SpawnOpts::named("tx"),
    );
    sim.run_until(t(10.0));
    let tx_prog = sim.program_mut(tx);
    assert!(tx_prog.is_none(), "sender exited; program slot cleared");
    assert_eq!(sim.exited_at(tx), Some(t(1.0))); // send completes at wire end
    let rx_done = sim.exited_at(rx).unwrap();
    assert_eq!(rx_done, t(1.0) + SimDuration::from_micros(300));
}

#[test]
fn local_message_is_fast_and_payload_survives() {
    let mut sim = two_hosts();
    let rx = sim.spawn(
        HostId(0),
        Box::new(Receiver {
            filter: RecvFilter::tag(7),
            got: None,
        }),
        SpawnOpts::named("rx"),
    );
    sim.spawn(
        HostId(0),
        Box::new(Sender {
            to: rx,
            bytes: 0,
            text: "<msg type=\"ack\"/>".to_string(),
            sent_at: None,
        }),
        SpawnOpts::named("tx"),
    );
    sim.run_until(t(1.0));
    assert_eq!(sim.exited_at(rx), Some(SimTime::from_micros(50)));
}

/// Accumulates every message it passively receives.
struct Collector {
    got: Vec<(Pid, u32, String)>,
}

impl Program for Collector {
    fn on_wake(&mut self, _ctx: &mut Ctx<'_>, wake: Wake) {
        if let Wake::Received(env) = wake {
            let text = env.payload.as_text().unwrap_or("").to_string();
            self.got.push((env.from, env.tag, text));
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn passive_daemon_receives_everything() {
    let mut sim = two_hosts();
    let daemon = sim.spawn(
        HostId(0),
        Box::new(Collector { got: Vec::new() }),
        SpawnOpts::named("daemon"),
    );
    for i in 0..3 {
        sim.spawn(
            HostId(1),
            Box::new(Sender {
                to: daemon,
                bytes: 0,
                text: format!("m{i}"),
                sent_at: None,
            }),
            SpawnOpts::named("tx"),
        );
    }
    sim.run_until(t(5.0));
    let collector = sim
        .program_mut(daemon)
        .unwrap()
        .as_any()
        .downcast_mut::<Collector>()
        .unwrap();
    let mut texts: Vec<&str> = collector.got.iter().map(|(_, _, s)| s.as_str()).collect();
    texts.sort_unstable();
    assert_eq!(texts, vec!["m0", "m1", "m2"]);
}

#[test]
fn recv_filter_defers_non_matching_messages() {
    let mut sim = two_hosts();
    let rx = sim.spawn(
        HostId(0),
        Box::new(Receiver {
            filter: RecvFilter::tag(7),
            got: None,
        }),
        SpawnOpts::named("rx"),
    );
    // A tag-9 message arrives first and must be held in the mailbox.
    struct TwoSends {
        to: Pid,
    }
    impl Program for TwoSends {
        fn on_wake(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
            if wake == Wake::Started {
                ctx.send(self.to, 9, Payload::Text("early".to_string()));
                ctx.send(self.to, 7, Payload::Text("wanted".to_string()));
                ctx.exit();
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }
    sim.spawn(
        HostId(1),
        Box::new(TwoSends { to: rx }),
        SpawnOpts::named("tx"),
    );
    sim.run_until(t(5.0));
    assert!(!sim.is_alive(rx), "receiver matched the tag-7 message");
}

/// Computes in chunks, checking for a signal at every poll point.
struct PollLoop {
    chunk: f64,
    chunks_done: u32,
    signalled_after: Option<u32>,
}

impl Program for PollLoop {
    fn on_wake(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
        match wake {
            Wake::Started => ctx.compute(self.chunk),
            Wake::OpDone => {
                self.chunks_done += 1;
                if ctx.take_signal().is_some() {
                    self.signalled_after = Some(self.chunks_done);
                    ctx.exit();
                } else {
                    ctx.compute(self.chunk);
                }
            }
            _ => {}
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn signals_are_seen_at_poll_points() {
    let mut sim = two_hosts();
    let pid = sim.spawn(
        HostId(0),
        Box::new(PollLoop {
            chunk: 1.0,
            chunks_done: 0,
            signalled_after: None,
        }),
        SpawnOpts::named("poller"),
    );
    sim.run_until(t(5.5)); // mid-chunk 6
    sim.signal(pid, 10);
    sim.run_until(t(20.0));
    // Signal posted at 5.5 lands at the end of chunk 6 (t = 6).
    assert_eq!(sim.exited_at(pid), Some(t(6.0)));
}

/// Spawns a child on another host and waits for its report.
struct Parent {
    child_host: HostId,
    reply: Option<String>,
}

impl Program for Parent {
    fn on_wake(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
        match wake {
            Wake::Started => {
                let me = ctx.pid();
                let child = ctx.spawn(
                    self.child_host,
                    Box::new(Child { parent: me }),
                    SpawnOpts::named("child"),
                );
                let _ = child;
                ctx.recv(RecvFilter::tag(42));
            }
            Wake::Received(env) => {
                self.reply = env.payload.as_text().map(str::to_string);
                ctx.exit();
            }
            _ => {}
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

struct Child {
    parent: Pid,
}

impl Program for Child {
    fn on_wake(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
        if wake == Wake::Started {
            ctx.compute(2.0);
            ctx.send(self.parent, 42, Payload::Text("done".to_string()));
            ctx.exit();
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn dynamic_spawn_and_reply() {
    let mut sim = two_hosts();
    let parent = sim.spawn(
        HostId(0),
        Box::new(Parent {
            child_host: HostId(1),
            reply: None,
        }),
        SpawnOpts::named("parent"),
    );
    sim.run_until(t(10.0));
    assert!(!sim.is_alive(parent));
    // Child computed 2 s then sent a tiny message.
    let exit = sim.exited_at(parent).unwrap();
    assert!(exit > t(2.0) && exit < t(2.1), "exit at {exit}");
}

#[test]
fn forwarding_reroutes_messages() {
    let mut sim = two_hosts();
    let new_rx = sim.spawn(
        HostId(1),
        Box::new(Receiver {
            filter: RecvFilter::any(),
            got: None,
        }),
        SpawnOpts::named("new"),
    );
    let old_rx = sim.spawn(
        HostId(0),
        Box::new(Collector { got: Vec::new() }),
        SpawnOpts::named("old"),
    );
    // Forward old -> new, as communication-state transfer does.
    struct Forwarder {
        old: Pid,
        new: Pid,
    }
    impl Program for Forwarder {
        fn on_wake(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
            if let Wake::Started = wake {
                ctx.set_forwarding(self.old, self.new);
                ctx.exit();
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }
    sim.spawn(
        HostId(0),
        Box::new(Forwarder {
            old: old_rx,
            new: new_rx,
        }),
        SpawnOpts::named("fwd"),
    );
    sim.run_until(t(0.1));
    sim.spawn(
        HostId(0),
        Box::new(Sender {
            to: old_rx,
            bytes: 0,
            text: "redirected".to_string(),
            sent_at: None,
        }),
        SpawnOpts::named("tx"),
    );
    sim.run_until(t(5.0));
    assert!(!sim.is_alive(new_rx), "forwarded message reached new pid");
}

/// Sleeps, then exits.
struct Napper;

impl Program for Napper {
    fn on_wake(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
        match wake {
            Wake::Started => ctx.sleep(SimDuration::from_secs(30)),
            Wake::OpDone => ctx.exit(),
            _ => {}
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn sleep_wakes_on_time() {
    let mut sim = two_hosts();
    let pid = sim.spawn(HostId(0), Box::new(Napper), SpawnOpts::named("nap"));
    sim.run_until(t(100.0));
    assert_eq!(sim.exited_at(pid), Some(t(30.0)));
}

#[test]
fn load_average_reflects_running_work() {
    let mut sim = two_hosts();
    for _ in 0..2 {
        sim.spawn(
            HostId(0),
            Box::new(Cruncher {
                work: 1e9,
                finished_at: None,
            }),
            SpawnOpts::named("burn"),
        );
    }
    sim.run_until(t(600.0));
    let (la1, _, _) = sim.kernel().hosts[0].load_avg();
    assert!((la1 - 2.0).abs() < 0.05, "la1={la1}");
    let (other, _, _) = sim.kernel().hosts[1].load_avg();
    assert_eq!(other, 0.0);
}

#[test]
fn recorder_samples_metrics() {
    let mut sim = two_hosts();
    sim.enable_recorder(SimDuration::from_secs(10));
    sim.spawn(
        HostId(0),
        Box::new(Cruncher {
            work: 1e9,
            finished_at: None,
        }),
        SpawnOpts::named("burn"),
    );
    sim.run_until(t(100.0));
    let rec = sim.recorder().unwrap();
    let s = rec.host(0);
    assert!(s.load1.len() >= 9);
    // Fully busy host: utilization ~1 in every window after the first.
    assert!(s.cpu_util.mean().unwrap() > 0.95);
    assert_eq!(rec.host(1).cpu_util.mean().unwrap(), 0.0);
}

#[test]
fn background_stream_moves_bytes() {
    let mut sim = two_hosts();
    let flow = sim
        .kernel_mut()
        .start_background_stream(HostId(0), HostId(1));
    sim.run_until(t(10.0));
    let moved = sim.kernel_mut().stop_background_stream(flow).unwrap();
    // 12.5 MB/s for 10 s.
    assert!((moved - 125e6).abs() < 1e3, "moved {moved}");
    assert!((sim.kernel().net.tx_bytes(ars_simnet::NodeId(0)) - 125e6).abs() < 1e3);
}

#[test]
fn kill_releases_resources() {
    let mut sim = two_hosts();
    let pid = sim.spawn(
        HostId(0),
        Box::new(Cruncher {
            work: 1e9,
            finished_at: None,
        }),
        SpawnOpts::named("burn").with_mem(1000, 1000),
    );
    sim.run_until(t(10.0));
    assert_eq!(sim.kernel().hosts[0].run_queue(), 1);
    struct Killer {
        victim: Pid,
    }
    impl Program for Killer {
        fn on_wake(&mut self, ctx: &mut Ctx<'_>, wake: Wake) {
            if let Wake::Started = wake {
                ctx.kill(self.victim);
                ctx.exit();
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }
    sim.spawn(
        HostId(0),
        Box::new(Killer { victim: pid }),
        SpawnOpts::named("kill"),
    );
    sim.run_until(t(11.0));
    assert!(!sim.is_alive(pid));
    assert_eq!(sim.kernel().hosts[0].run_queue(), 0);
    assert_eq!(sim.kernel().hosts[0].procs().len(), 0);
    assert_eq!(sim.kernel().hosts[0].mem().phys_avail_kb(), 131_072);
}

#[test]
fn identical_seeds_identical_runs() {
    let run = |seed: u64| -> Vec<(u64, String)> {
        let mut sim = Sim::new(
            vec![HostConfig::named("ws1"), HostConfig::named("ws2")],
            SimConfig {
                seed,
                trace: true,
                ..SimConfig::default()
            },
        );
        let daemon = sim.spawn(
            HostId(0),
            Box::new(Collector { got: Vec::new() }),
            SpawnOpts::named("daemon"),
        );
        for i in 0..5 {
            sim.spawn(
                HostId(1),
                Box::new(Sender {
                    to: daemon,
                    bytes: 1000 * (i + 1),
                    text: format!("m{i}"),
                    sent_at: None,
                }),
                SpawnOpts::named("tx"),
            );
        }
        sim.run_until(t(60.0));
        sim.kernel()
            .trace
            .events()
            .iter()
            .map(|e| (e.t.as_micros(), e.detail.clone()))
            .collect()
    };
    assert_eq!(run(1), run(1));
    assert_eq!(run(2), run(2));
}
