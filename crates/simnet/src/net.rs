//! Flow-level network simulation (see crate docs for the sharing model).

use ars_simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Index of a node (host NIC) in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of an in-flight flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u64);

/// Bytes below this are considered fully transferred.
const COMPLETION_EPS: f64 = 1e-6;

/// Network-wide configuration.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// NIC capacity in bytes/second for each direction (full duplex).
    /// 100 Mbps Ethernet = 12.5 MB/s = 12 500 000.
    pub nic_bytes_per_sec: f64,
    /// One-way propagation + protocol latency per message.
    pub latency: SimDuration,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            nic_bytes_per_sec: 12_500_000.0,
            latency: SimDuration::from_micros(300),
        }
    }
}

/// One unidirectional data transfer.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Bytes still to transfer; `None` for persistent background streams.
    remaining: Option<f64>,
    /// Current fair-share rate (bytes/s), updated on membership changes.
    rate: f64,
    /// Bytes moved so far.
    transferred: f64,
    finished: bool,
}

impl Flow {
    fn active(&self) -> bool {
        !self.finished
    }
}

#[derive(Debug, Clone, Default)]
struct Nic {
    tx_bytes: f64,
    rx_bytes: f64,
    tx_flows: u32,
    rx_flows: u32,
}

/// The cluster network: a set of NICs plus the in-flight flow set.
pub struct Network {
    config: NetworkConfig,
    nics: Vec<Nic>,
    flows: BTreeMap<FlowId, Flow>,
    next_id: u64,
    last_advance: SimTime,
    version: u64,
}

impl Network {
    /// Create a network of `n_nodes` identical NICs.
    pub fn new(n_nodes: usize, config: NetworkConfig) -> Self {
        Network {
            config,
            nics: vec![Nic::default(); n_nodes],
            flows: BTreeMap::new(),
            next_id: 0,
            last_advance: SimTime::ZERO,
            version: 0,
        }
    }

    /// Network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nics.len()
    }

    /// True when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nics.is_empty()
    }

    /// Membership version for lazy event invalidation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Cumulative bytes sent by a node.
    pub fn tx_bytes(&self, node: NodeId) -> f64 {
        self.nics[node.0 as usize].tx_bytes
    }

    /// Cumulative bytes received by a node.
    pub fn rx_bytes(&self, node: NodeId) -> f64 {
        self.nics[node.0 as usize].rx_bytes
    }

    /// Number of active flows originating at `node`.
    pub fn tx_flow_count(&self, node: NodeId) -> u32 {
        self.nics[node.0 as usize].tx_flows
    }

    /// Number of active flows terminating at `node`.
    pub fn rx_flow_count(&self, node: NodeId) -> u32 {
        self.nics[node.0 as usize].rx_flows
    }

    /// Look up a flow.
    pub fn flow(&self, id: FlowId) -> Option<&Flow> {
        self.flows.get(&id)
    }

    /// Current rate of a flow in bytes/second (0 for finished/unknown).
    pub fn rate_of(&self, id: FlowId) -> f64 {
        self.flows.get(&id).map_or(0.0, |f| {
            if f.active() {
                f.rate
            } else {
                0.0
            }
        })
    }

    /// Bytes transferred by a flow so far.
    pub fn transferred_of(&self, id: FlowId) -> f64 {
        self.flows.get(&id).map_or(0.0, |f| f.transferred)
    }

    fn recompute_rates(&mut self) {
        let cap = self.config.nic_bytes_per_sec;
        for flow in self.flows.values_mut() {
            if !flow.active() {
                continue;
            }
            let n_tx = self.nics[flow.src.0 as usize].tx_flows.max(1) as f64;
            let n_rx = self.nics[flow.dst.0 as usize].rx_flows.max(1) as f64;
            flow.rate = (cap / n_tx).min(cap / n_rx);
        }
    }

    /// Settle transfers in `[last_advance, now]`, handling completions that
    /// occur inside the interval (survivors speed up when a flow finishes).
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_advance, "time ran backwards");
        let mut remaining_dt = now.since(self.last_advance).as_secs_f64();
        self.last_advance = now;
        while remaining_dt > 0.0 {
            // Earliest in-interval completion at current rates.
            let mut dt_next = f64::INFINITY;
            let mut any_active = false;
            for f in self.flows.values() {
                if !f.active() {
                    continue;
                }
                any_active = true;
                if let Some(rem) = f.remaining {
                    if f.rate > 0.0 {
                        dt_next = dt_next.min(rem / f.rate);
                    }
                }
            }
            if !any_active {
                break;
            }
            let step = remaining_dt.min(dt_next);
            let mut membership_changed = false;
            for f in self.flows.values_mut() {
                if !f.active() {
                    continue;
                }
                let moved = f.rate * step;
                f.transferred += moved;
                self.nics[f.src.0 as usize].tx_bytes += moved;
                self.nics[f.dst.0 as usize].rx_bytes += moved;
                if let Some(rem) = &mut f.remaining {
                    *rem -= moved;
                    if *rem <= COMPLETION_EPS {
                        *rem = 0.0;
                        f.finished = true;
                        self.nics[f.src.0 as usize].tx_flows -= 1;
                        self.nics[f.dst.0 as usize].rx_flows -= 1;
                        membership_changed = true;
                    }
                }
            }
            if membership_changed {
                self.recompute_rates();
            }
            remaining_dt -= step;
        }
    }

    /// Start transferring `bytes` from `src` to `dst` (`None` = persistent
    /// background stream). Call at the current time.
    pub fn start_flow(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: Option<f64>,
    ) -> FlowId {
        assert_ne!(src, dst, "loopback traffic does not touch the network");
        if let Some(b) = bytes {
            assert!(b > 0.0, "flow must carry at least one byte");
        }
        self.advance(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.nics[src.0 as usize].tx_flows += 1;
        self.nics[dst.0 as usize].rx_flows += 1;
        self.flows.insert(
            id,
            Flow {
                src,
                dst,
                remaining: bytes,
                rate: 0.0,
                transferred: 0.0,
                finished: false,
            },
        );
        self.recompute_rates();
        self.version += 1;
        id
    }

    /// Remove a flow (finished or aborted), returning bytes it transferred.
    pub fn end_flow(&mut self, now: SimTime, id: FlowId) -> Option<f64> {
        self.advance(now);
        let flow = self.flows.remove(&id)?;
        if flow.active() {
            self.nics[flow.src.0 as usize].tx_flows -= 1;
            self.nics[flow.dst.0 as usize].rx_flows -= 1;
            self.recompute_rates();
        }
        self.version += 1;
        Some(flow.transferred)
    }

    /// The earliest upcoming flow completion assuming the flow set does not
    /// change; check [`version`](Self::version) when the event fires.
    pub fn next_completion(&self, now: SimTime) -> Option<(SimTime, FlowId)> {
        debug_assert!(now >= self.last_advance);
        let already = now.since(self.last_advance).as_secs_f64();
        let mut best: Option<(f64, FlowId)> = None;
        for (&id, f) in &self.flows {
            if !f.active() {
                continue;
            }
            let Some(rem) = f.remaining else { continue };
            if f.rate <= 0.0 {
                continue;
            }
            let dt = (rem / f.rate - already).max(0.0);
            if best.is_none_or(|(b, _)| dt < b) {
                best = Some((dt, id));
            }
        }
        best.map(|(dt, id)| (now + SimDuration::from_secs_f64_ceil(dt), id))
    }

    /// Flows that have completed as of the last `advance`.
    pub fn finished_flows(&self) -> Vec<FlowId> {
        self.flows
            .iter()
            .filter(|(_, f)| f.finished)
            .map(|(&id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: f64 = 12_500_000.0; // 100 Mbps in bytes/s

    fn net(n: usize) -> Network {
        Network::new(n, NetworkConfig::default())
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn lone_flow_gets_full_capacity() {
        let mut net = net(2);
        let f = net.start_flow(t(0.0), n(0), n(1), Some(CAP));
        assert_eq!(net.rate_of(f), CAP);
        let (done, id) = net.next_completion(t(0.0)).unwrap();
        assert_eq!(id, f);
        assert_eq!(done, t(1.0));
    }

    #[test]
    fn two_flows_same_source_share_tx() {
        let mut net = net(3);
        let a = net.start_flow(t(0.0), n(0), n(1), Some(CAP));
        let b = net.start_flow(t(0.0), n(0), n(2), Some(CAP));
        assert_eq!(net.rate_of(a), CAP / 2.0);
        assert_eq!(net.rate_of(b), CAP / 2.0);
    }

    #[test]
    fn two_flows_same_destination_share_rx() {
        let mut net = net(3);
        let a = net.start_flow(t(0.0), n(0), n(2), Some(CAP));
        let b = net.start_flow(t(0.0), n(1), n(2), Some(CAP));
        assert_eq!(net.rate_of(a), CAP / 2.0);
        assert_eq!(net.rate_of(b), CAP / 2.0);
    }

    #[test]
    fn disjoint_flows_do_not_contend() {
        let mut net = net(4);
        let a = net.start_flow(t(0.0), n(0), n(1), Some(CAP));
        let b = net.start_flow(t(0.0), n(2), n(3), Some(CAP));
        assert_eq!(net.rate_of(a), CAP);
        assert_eq!(net.rate_of(b), CAP);
    }

    #[test]
    fn full_duplex_opposite_directions_independent() {
        let mut net = net(2);
        let a = net.start_flow(t(0.0), n(0), n(1), Some(CAP));
        let b = net.start_flow(t(0.0), n(1), n(0), Some(CAP));
        assert_eq!(net.rate_of(a), CAP);
        assert_eq!(net.rate_of(b), CAP);
    }

    #[test]
    fn completion_frees_capacity_mid_advance() {
        let mut net = net(3);
        // a: 2 cap-seconds worth; b: 0.5 cap-seconds. Sharing the tx NIC:
        // b done at t=1 (rate cap/2). a then speeds up.
        let a = net.start_flow(t(0.0), n(0), n(1), Some(2.0 * CAP));
        let _b = net.start_flow(t(0.0), n(0), n(2), Some(0.5 * CAP));
        net.advance(t(1.0));
        assert!((net.transferred_of(a) - 0.5 * CAP).abs() < 1.0);
        // a has 1.5 cap-seconds left at full rate.
        let (done, id) = net.next_completion(t(1.0)).unwrap();
        assert_eq!(id, a);
        assert!((done.as_secs_f64() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn counters_track_both_ends() {
        let mut net = net(2);
        net.start_flow(t(0.0), n(0), n(1), Some(1000.0));
        net.advance(t(1.0));
        assert!((net.tx_bytes(n(0)) - 1000.0).abs() < 1e-3);
        assert!((net.rx_bytes(n(1)) - 1000.0).abs() < 1e-3);
        assert_eq!(net.tx_bytes(n(1)), 0.0);
        assert_eq!(net.rx_bytes(n(0)), 0.0);
    }

    #[test]
    fn persistent_stream_consumes_share_forever() {
        let mut net = net(3);
        let bg = net.start_flow(t(0.0), n(0), n(1), None);
        let f = net.start_flow(t(0.0), n(0), n(2), Some(CAP));
        assert_eq!(net.rate_of(f), CAP / 2.0);
        let (done, _) = net.next_completion(t(0.0)).unwrap();
        assert_eq!(done, t(2.0));
        net.advance(t(2.0));
        // bg carried cap/2 * 2 s; f finished and bg got the tx NIC back.
        assert!((net.transferred_of(bg) - CAP).abs() < 1.0);
        assert_eq!(net.rate_of(bg), CAP);
        assert!(net.next_completion(t(2.0)).is_none());
    }

    #[test]
    fn end_flow_aborts_and_returns_transferred() {
        let mut net = net(2);
        let f = net.start_flow(t(0.0), n(0), n(1), Some(10.0 * CAP));
        net.advance(t(1.0));
        let moved = net.end_flow(t(1.0), f).unwrap();
        assert!((moved - CAP).abs() < 1.0);
        assert!(net.flow(f).is_none());
    }

    #[test]
    fn version_changes_on_flow_set_changes() {
        let mut net = net(2);
        let v0 = net.version();
        let f = net.start_flow(t(0.0), n(0), n(1), Some(1.0));
        assert!(net.version() > v0);
        let v1 = net.version();
        net.end_flow(t(0.0), f);
        assert!(net.version() > v1);
    }

    #[test]
    fn conservation_tx_equals_rx() {
        let mut net = net(4);
        net.start_flow(t(0.0), n(0), n(1), Some(5e6));
        net.start_flow(t(0.5), n(2), n(1), Some(3e6));
        net.start_flow(t(1.0), n(0), n(3), None);
        net.advance(t(4.0));
        let tx: f64 = (0..4).map(|i| net.tx_bytes(n(i))).sum();
        let rx: f64 = (0..4).map(|i| net.rx_bytes(n(i))).sum();
        assert!((tx - rx).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_flows_rejected() {
        let mut net = net(2);
        net.start_flow(t(0.0), n(0), n(0), Some(1.0));
    }
}
