//! Migratable applications, configuration and migration records.

use ars_obs::Obs;
use ars_sim::{Ctx, HostId, Pid, Wake};
use ars_simcore::{SimDuration, SimTime};
use ars_xmlwire::ApplicationSchema;
use std::cell::RefCell;
use std::rc::Rc;

/// The user-defined signal the commander posts to start a migration
/// (the paper binds a user-defined UNIX signal).
pub const MIGRATE_SIGNAL: u32 = 30;

/// Message tag carrying the eager checkpoint.
pub const TAG_HPCM_EAGER: u32 = 0xE0E0;
/// Message tag carrying the lazily streamed remainder of the state.
pub const TAG_HPCM_LAZY: u32 = 0xE0E1;
/// Destination → source: initialized and ready to receive the checkpoint.
pub const TAG_HPCM_READY: u32 = 0xE0E2;
/// Destination → source: state restored, requesting the commit.
pub const TAG_HPCM_COMMIT: u32 = 0xE0E3;
/// Source → destination: commit acknowledged, resume the application.
pub const TAG_HPCM_COMMIT_ACK: u32 = 0xE0E4;
/// Coordinator → member: stop at your next safe poll-point (resize).
pub const TAG_HPCM_FREEZE: u32 = 0xE0E5;
/// Member → coordinator: frozen at a poll-point; payload carries the
/// member's [`MigratableApp::sync_key`] for phase-agreement checking.
pub const TAG_HPCM_FROZEN: u32 = 0xE0E6;
/// Coordinator → member: verdict. Payload byte 1 = commit (sync to the
/// resized world), 0 = abort (resume in the old world).
pub const TAG_HPCM_RESUME: u32 = 0xE0E7;
/// Coordinator → member: your rank was shrunk away — drain and exit.
pub const TAG_HPCM_RETIRE: u32 = 0xE0E8;

/// Host-file path the commander writes the destination into for `pid`.
pub fn dest_file_path(pid: Pid) -> String {
    format!("/tmp/hpcm/dest-{}", pid.0)
}

/// What an application's `step` reports back to the shell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppStatus {
    /// More work queued; the shell keeps driving.
    Running,
    /// The application completed; the shell records and exits.
    Finished,
}

/// A checkpoint split into the part needed to resume and the modeled bulk
/// remainder (streamed lazily while the restored process already runs —
/// "the process resumes execution at the destination before the migration
/// ends", §5.2).
#[derive(Debug, Clone, PartialEq)]
pub struct SavedState {
    /// Execution state + live data required to resume, as real bytes.
    pub eager: Vec<u8>,
    /// Remaining memory image, modeled by size only.
    pub lazy_bytes: u64,
}

/// An application that HPCM can migrate.
///
/// The shell drives `step` with kernel wakes; every return from `step` is a
/// *poll-point*: the shell may decide to capture the state (via [`save`])
/// and move the process. After restoration on the destination, `step` is
/// called with [`Wake::Started`] again and must re-issue the ops for the
/// current phase (any work since the last poll-point is re-executed —
/// exactly the paper's poll-point semantics).
///
/// [`save`]: MigratableApp::save
pub trait MigratableApp: 'static {
    /// Application name (matches the process table and schema).
    fn app_name(&self) -> String;

    /// The application schema shipped to the registry and destination.
    fn schema(&self) -> ApplicationSchema;

    /// Advance the application state machine.
    fn step(&mut self, ctx: &mut Ctx<'_>, wake: Wake) -> AppStatus;

    /// Capture state at a poll-point.
    fn save(&self) -> SavedState;

    /// Rebuild from the eager checkpoint on the destination. MPI
    /// applications receive the shared [`Mpi`](ars_mpisim::Mpi) world to
    /// re-attach their communicators (identifiers inside the checkpoint
    /// stay valid because task identities survive migration).
    ///
    /// Returns an error — never panics — on a malformed checkpoint; the
    /// shell then aborts the restore and the source rolls the application
    /// back to its poll-point.
    fn restore(eager: &[u8], mpi: Option<&ars_mpisim::Mpi>) -> Result<Self, crate::CodecError>
    where
        Self: Sized;

    /// True when the current poll-point is safe for migration (default:
    /// always). Applications blocked mid-collective return false to defer.
    fn migration_safe(&self) -> bool {
        true
    }

    /// Application-defined progress measure (e.g. CPU-seconds of work
    /// completed), carried into the completion record. Survives migration
    /// because it is part of the saved state.
    fn progress(&self) -> f64 {
        0.0
    }

    /// Application-defined result digest (e.g. a checksum of the computed
    /// answer), carried into the completion record so harnesses can verify
    /// that migration did not corrupt the computation.
    fn result_digest(&self) -> u64 {
        0
    }

    /// The communicator this application is willing to resize, or `None`
    /// for fixed-size applications (the default — expand/shrink commands
    /// against them are refused at the poll-point, exactly like a migrate
    /// signal against a non-migratable process).
    fn resize_comm(&self) -> Option<ars_mpisim::CommId> {
        None
    }

    /// Checkpoint for a joiner that will become rank `rank` of a
    /// `new_size`-rank world. Restored via [`restore`](Self::restore) on
    /// the destination like a migration checkpoint; `None` (the default)
    /// refuses to expand.
    fn save_for_join(&self, _rank: u32, _new_size: u32) -> Option<SavedState> {
        None
    }

    /// Phase fingerprint compared across members when they freeze for a
    /// resize (e.g. the iteration number). A mismatch — members stopped at
    /// different phases — aborts the resize rather than redistributing
    /// inconsistent data.
    fn sync_key(&self) -> u64 {
        0
    }
}

/// HPCM tuning knobs.
#[derive(Debug, Clone)]
pub struct HpcmConfig {
    /// Cost of LAM/MPI dynamic process creation on the destination
    /// (the paper measures ~0.3 s; `pre_initialized` skips it).
    pub dpm_init_cost: SimDuration,
    /// Destination processes were created ahead of time ("we can also
    /// choose to improve this performance by pre-initializing the processes
    /// on the candidate destination machines").
    pub pre_initialized: bool,
    /// Fixed restoration overhead before the restored process resumes.
    pub restore_fixed: SimDuration,
    /// Restoration throughput for the eager checkpoint, bytes/second.
    pub restore_rate: f64,
    /// Source-side deadline for the destination's READY message. Expiry
    /// rolls the application back to its poll-point (destination host
    /// down, spawn refused, READY lost…).
    pub prepare_timeout: SimDuration,
    /// Source-side deadline, armed at READY, for the destination's COMMIT
    /// (covers the eager transfer and restoration). Expiry rolls back.
    pub commit_timeout: SimDuration,
    /// Destination-side deadline for the eager checkpoint and, re-armed at
    /// COMMIT, for the source's COMMIT_ACK. Expiry makes the destination
    /// shell abort itself (the source has crashed or rolled back).
    pub restore_wait_timeout: SimDuration,
    /// Observability session (migration phase events + per-phase latency
    /// histograms). The disabled default is a no-op and an enabled session
    /// never perturbs the simulation.
    pub obs: Obs,
}

impl Default for HpcmConfig {
    fn default() -> Self {
        HpcmConfig {
            dpm_init_cost: SimDuration::from_millis(300),
            pre_initialized: false,
            restore_fixed: SimDuration::from_millis(350),
            restore_rate: 50_000_000.0,
            prepare_timeout: SimDuration::from_secs(10),
            commit_timeout: SimDuration::from_secs(30),
            restore_wait_timeout: SimDuration::from_secs(30),
            obs: Obs::disabled(),
        }
    }
}

/// Transactional outcome of a migration attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MigrationOutcome {
    /// Transaction still in flight (prepare/transfer/commit).
    #[default]
    InFlight,
    /// Committed: the destination owns the process; the source wound down.
    Committed,
    /// Aborted: the source rolled the application back to its poll-point
    /// (see [`MigrationRecord::abort_reason`]).
    Aborted,
}

/// Timeline of one completed migration (§5.2's phases).
#[derive(Debug, Clone)]
pub struct MigrationRecord {
    /// Pid on the source.
    pub pid_old: Pid,
    /// Pid on the destination.
    pub pid_new: Pid,
    /// Source host.
    pub from: HostId,
    /// Destination host.
    pub to: HostId,
    /// Application name.
    pub app: String,
    /// When the migration signal was observed (poll-point reached).
    pub pollpoint_at: SimTime,
    /// When the initialized process was spawned on the destination.
    pub spawned_at: SimTime,
    /// When the eager checkpoint had fully left the source.
    pub eager_sent_at: SimTime,
    /// When the source granted the commit (COMMIT received, handover done).
    pub committed_at: Option<SimTime>,
    /// When the destination resumed executing the application.
    pub resumed_at: Option<SimTime>,
    /// When the lazy remainder finished arriving (migration complete).
    pub lazy_done_at: Option<SimTime>,
    /// Eager checkpoint size, bytes (as framed on the wire).
    pub eager_bytes: u64,
    /// Lazy remainder size, bytes.
    pub lazy_bytes: u64,
    /// How the transaction ended.
    pub outcome: MigrationOutcome,
    /// Why it aborted, when it did.
    pub abort_reason: Option<String>,
}

/// Completion record of a migratable application.
#[derive(Debug, Clone)]
pub struct CompletionRecord {
    /// Application name.
    pub app: String,
    /// Final pid.
    pub pid: Pid,
    /// Host it finished on.
    pub host: HostId,
    /// When it finished.
    pub finished_at: SimTime,
    /// The application's own progress measure at completion
    /// ([`MigratableApp::progress`]).
    pub work_done: f64,
    /// The application's result digest ([`MigratableApp::result_digest`]).
    pub digest: u64,
}

/// Which way a resize transaction moved the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeKind {
    /// Grew the world (joiners spawned).
    Expand,
    /// Shrank the world (high ranks retired).
    Shrink,
}

/// Timeline of one expand/shrink transaction, recorded by the
/// coordinating shell (the rank the registry signalled).
#[derive(Debug, Clone)]
pub struct ResizeRecord {
    /// Application name.
    pub app: String,
    /// Coordinator pid.
    pub coordinator: Pid,
    /// Expand or shrink.
    pub kind: ResizeKind,
    /// World size when the transaction started.
    pub from_ranks: u32,
    /// Target world size.
    pub to_ranks: u32,
    /// When the coordinator took the poll-point.
    pub started_at: SimTime,
    /// When the world actually resized (epoch bumped), if it did.
    pub committed_at: Option<SimTime>,
    /// Bytes that changed owner during array redistribution.
    pub moved_bytes: u64,
    /// How the transaction ended (shares the migration vocabulary).
    pub outcome: MigrationOutcome,
    /// Why it aborted, when it did.
    pub abort_reason: Option<String>,
}

/// Shared event log the experiment harness reads.
#[derive(Debug, Default)]
pub struct HpcmLog {
    /// Completed (or in-flight, with `resumed_at == None`) migrations.
    pub migrations: Vec<MigrationRecord>,
    /// Application completions.
    pub completions: Vec<CompletionRecord>,
    /// Expand/shrink transactions.
    pub resizes: Vec<ResizeRecord>,
}

/// Cheap handle to the shared log.
#[derive(Clone, Default)]
pub struct HpcmHooks(pub Rc<RefCell<HpcmLog>>);

impl HpcmHooks {
    /// Fresh empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recent migration record, if any.
    pub fn last_migration(&self) -> Option<MigrationRecord> {
        self.0.borrow().migrations.last().cloned()
    }

    /// Number of migrations recorded.
    pub fn migration_count(&self) -> usize {
        self.0.borrow().migrations.len()
    }

    /// Completion record of the named app, if finished.
    pub fn completion_of(&self, app: &str) -> Option<CompletionRecord> {
        self.0
            .borrow()
            .completions
            .iter()
            .find(|c| c.app == app)
            .cloned()
    }

    /// Number of migrations that ended in the given outcome.
    pub fn outcome_count(&self, outcome: MigrationOutcome) -> usize {
        self.0
            .borrow()
            .migrations
            .iter()
            .filter(|m| m.outcome == outcome)
            .count()
    }

    /// The most recent resize record, if any.
    pub fn last_resize(&self) -> Option<ResizeRecord> {
        self.0.borrow().resizes.last().cloned()
    }

    /// Number of resizes of the given kind that ended in the given outcome.
    pub fn resize_count(&self, kind: ResizeKind, outcome: MigrationOutcome) -> usize {
        self.0
            .borrow()
            .resizes
            .iter()
            .filter(|r| r.kind == kind && r.outcome == outcome)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_file_paths_are_per_pid() {
        assert_eq!(dest_file_path(Pid(3)), "/tmp/hpcm/dest-3");
        assert_ne!(dest_file_path(Pid(1)), dest_file_path(Pid(2)));
    }

    #[test]
    fn default_config_matches_paper_costs() {
        let c = HpcmConfig::default();
        assert_eq!(c.dpm_init_cost, SimDuration::from_millis(300));
        assert!(!c.pre_initialized);
    }

    #[test]
    fn hooks_are_shared() {
        let hooks = HpcmHooks::new();
        let clone = hooks.clone();
        clone.0.borrow_mut().completions.push(CompletionRecord {
            app: "x".to_string(),
            pid: Pid(1),
            host: HostId(0),
            finished_at: SimTime::ZERO,
            work_done: 1.0,
            digest: 0,
        });
        assert!(hooks.completion_of("x").is_some());
        assert!(hooks.completion_of("y").is_none());
        assert_eq!(hooks.migration_count(), 0);
    }
}
