//! Ablation A4 — monitoring frequency (§3.1: "monitoring can be performed
//! periodically or only when necessary. We chose the former for a better
//! reaction time"): the overhead/reaction-time trade-off.

use ars_bench::ablations::monitor_freq;

fn main() {
    println!("A4 — monitoring frequency vs overhead and reaction time\n");
    println!(
        "{:>12} {:>16} {:>16}",
        "interval (s)", "cpu overhead", "detection (s)"
    );
    for interval in [2u64, 5, 10, 20, 30, 60] {
        let o = monitor_freq(interval, 7);
        println!(
            "{:>12} {:>15.2}% {:>16}",
            o.interval_s,
            o.cpu_overhead * 100.0,
            o.detection_s.map_or("-".to_string(), |d| format!("{d:.1}")),
        );
    }
    println!("\nexpected shape: tighter intervals burn more CPU on every host but detect");
    println!("overloads sooner; the paper chose 10 s as the operating point.");
}
