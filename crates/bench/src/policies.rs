//! The §5.3 policy experiment (Table 2).
//!
//! Five workstations (plus the registry host and the stream's sink):
//!
//! * ws1 — the source: the application starts here, then additional tasks
//!   load the host;
//! * ws2 — busy communicating with the 5th machine at 6.7–7.8 MB/s, CPU
//!   load just under the destination threshold (paper: 0.97);
//! * ws3 — CPU workload ≈ 2.5;
//! * ws4 — free.
//!
//! The same application runs under Policy 1 (no migration), Policy 2
//! (load-only) and Policy 3 (communication-aware).

use ars_apps::{CommFlood, DaemonNoise, Sink, Spinner, TestTree, TestTreeConfig};
use ars_hpcm::{HpcmConfig, HpcmHooks, MigratableApp};
use ars_rescheduler::{deploy, DeployConfig};
use ars_rules::Policy;
use ars_sim::{HostId, Sim, SimConfig, SpawnOpts};
use ars_simcore::{SimDuration, SimTime};
use ars_simhost::HostConfig;
use ars_sysinfo::Ambient;

/// One Table 2 row.
pub struct PolicyOutcome {
    /// Policy label.
    pub policy: &'static str,
    /// Total execution time, seconds.
    pub total_s: f64,
    /// Destination host name, if migrated.
    pub migrate_to: Option<String>,
    /// Time resident on the source, seconds.
    pub source_s: f64,
    /// Time resident on the destination, seconds.
    pub dest_s: f64,
    /// Migration time (poll-point → lazy completion), seconds.
    pub migration_s: Option<f64>,
}

/// The application used in every run (~330 s on a free reference host).
pub fn workload() -> TestTreeConfig {
    TestTreeConfig {
        trees: 8,
        levels: 13,
        node_cost_build: 1.6e-3,
        node_cost_sort: 2.2e-3,
        node_cost_sum: 1.2e-3,
        chunk_nodes: 1024,
        rss_kb: 49_152,
        seed: 3,
    }
}

/// Run one policy.
pub fn run(label: &'static str, policy: Policy, seed: u64) -> PolicyOutcome {
    let mut sim = Sim::new(
        (0..6)
            .map(|i| HostConfig::named(format!("ws{i}")))
            .collect(),
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    );
    let dep = deploy(
        &mut sim,
        HostId(0),
        &[HostId(1), HostId(2), HostId(3), HostId(4)],
        DeployConfig {
            policy,
            ambient: Ambient {
                base_nproc: 60,
                ..Ambient::default()
            },
            overload_confirm: SimDuration::from_secs(60),
            ..DeployConfig::default()
        },
    );

    // ws2 <-> ws5: the communicating pair.
    let sink = sim.spawn(
        HostId(5),
        Box::new(Sink::default()),
        SpawnOpts::named("sink"),
    );
    sim.spawn(
        HostId(2),
        Box::new(CommFlood::new(sink, 7_200_000.0, 12_500_000.0)),
        SpawnOpts::named("ftp"),
    );
    sim.spawn(
        HostId(2),
        Box::new(DaemonNoise::new(0.6, 2.0)),
        SpawnOpts::named("noise"),
    );
    // ws3: CPU workload ~2.5.
    for _ in 0..3 {
        sim.spawn(
            HostId(3),
            Box::new(Spinner::default()),
            SpawnOpts::named("hog"),
        );
    }

    let app = TestTree::new(workload());
    dep.schemas.put(MigratableApp::schema(&app));
    let hpcm = HpcmHooks::new();
    let started_at = SimTime::from_secs(30);
    sim.run_until(started_at);
    ars_hpcm::HpcmShell::spawn_on(
        &mut sim,
        HostId(1),
        app,
        HpcmConfig::default(),
        None,
        hpcm.clone(),
    );
    sim.run_until(started_at + SimDuration::from_secs(20));
    for _ in 0..2 {
        sim.spawn(
            HostId(1),
            Box::new(Spinner::default()),
            SpawnOpts::named("hog"),
        );
    }
    sim.run_until(SimTime::from_secs(10_000));

    let done = hpcm.completion_of("test_tree").expect("finished");
    let total_s = done.finished_at.since(started_at).as_secs_f64();
    match hpcm.last_migration() {
        Some(m) => {
            let resumed = m.resumed_at.expect("resumed");
            let lazy = m.lazy_done_at.unwrap_or(resumed);
            PolicyOutcome {
                policy: label,
                total_s,
                migrate_to: Some(sim.kernel().hosts[m.to.0 as usize].name().to_string()),
                source_s: m.pollpoint_at.since(started_at).as_secs_f64(),
                dest_s: done.finished_at.since(resumed).as_secs_f64(),
                migration_s: Some(lazy.since(m.pollpoint_at).as_secs_f64()),
            }
        }
        None => PolicyOutcome {
            policy: label,
            total_s,
            migrate_to: None,
            source_s: total_s,
            dest_s: 0.0,
            migration_s: None,
        },
    }
}

/// Run all three policies.
pub fn run_all(seed: u64) -> Vec<PolicyOutcome> {
    vec![
        run("1", Policy::no_migration(), seed),
        run("2", Policy::paper_policy2(), seed),
        run("3", Policy::paper_policy3(), seed),
    ]
}
