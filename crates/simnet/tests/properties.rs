//! Property-based tests for the network model.

use ars_simcore::SimTime;
use ars_simnet::{Network, NetworkConfig, NodeId};
use proptest::prelude::*;

fn t_us(us: u64) -> SimTime {
    SimTime::from_micros(us)
}

proptest! {
    /// Conservation: every byte sent is received (total tx == total rx).
    #[test]
    fn tx_equals_rx(
        n_nodes in 2usize..8,
        flows in proptest::collection::vec(
            (0u32..8, 0u32..8, 1_000.0f64..50_000_000.0, 0u64..5_000_000),
            1..20,
        ),
    ) {
        let mut net = Network::new(n_nodes, NetworkConfig::default());
        let mut evs: Vec<(u64, u32, u32, f64)> = flows
            .into_iter()
            .map(|(s, d, b, at)| (at, s % n_nodes as u32, d % n_nodes as u32, b))
            .filter(|&(_, s, d, _)| s != d)
            .collect();
        evs.sort_by_key(|&(at, ..)| at);
        for &(at, s, d, b) in &evs {
            net.start_flow(t_us(at), NodeId(s), NodeId(d), Some(b));
        }
        net.advance(t_us(60_000_000));
        let tx: f64 = (0..n_nodes).map(|i| net.tx_bytes(NodeId(i as u32))).sum();
        let rx: f64 = (0..n_nodes).map(|i| net.rx_bytes(NodeId(i as u32))).sum();
        prop_assert!((tx - rx).abs() < 1e-3, "tx {tx} rx {rx}");
    }

    /// No flow transfers more than it asked for, and all bounded flows
    /// complete given enough time.
    #[test]
    fn flows_complete_exactly(
        bytes in proptest::collection::vec(1_000.0f64..10_000_000.0, 1..10),
    ) {
        let mut net = Network::new(2, NetworkConfig::default());
        let ids: Vec<_> = bytes
            .iter()
            .map(|&b| net.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), Some(b)))
            .collect();
        // Total work bounded by sum/capacity; give it double.
        let total: f64 = bytes.iter().sum();
        let enough = SimTime::from_secs_f64(2.0 * total / 12_500_000.0 + 1.0);
        net.advance(enough);
        for (id, &b) in ids.iter().zip(&bytes) {
            let moved = net.transferred_of(*id);
            prop_assert!((moved - b).abs() < 1e-3, "moved {moved} of {b}");
        }
        prop_assert_eq!(net.finished_flows().len(), bytes.len());
    }

    /// A NIC never carries more than its capacity: cumulative bytes out of
    /// one node over a window never exceed capacity * window.
    #[test]
    fn nic_capacity_respected(
        bytes in proptest::collection::vec(1_000.0f64..20_000_000.0, 1..10),
        window_us in 100_000u64..5_000_000,
    ) {
        let mut net = Network::new(3, NetworkConfig::default());
        for (i, &b) in bytes.iter().enumerate() {
            let dst = NodeId(1 + (i % 2) as u32);
            net.start_flow(SimTime::ZERO, NodeId(0), dst, Some(b));
        }
        net.advance(t_us(window_us));
        let tx = net.tx_bytes(NodeId(0));
        let cap = 12_500_000.0 * window_us as f64 / 1e6;
        prop_assert!(tx <= cap * (1.0 + 1e-9) + 1.0, "tx {tx} cap {cap}");
    }

    /// The incremental per-NIC fair-share bookkeeping stays bit-identical to
    /// the settle-everything rescan under arbitrary interleavings of flow
    /// starts, flow ends and advances: same rates (to the bit), same served
    /// byte counts, same projected completions — and the incremental side's
    /// internal invariants hold throughout.
    #[test]
    fn incremental_rates_match_full_rescan(
        n_nodes in 2usize..6,
        ops in proptest::collection::vec(
            (0u8..3, 0u32..8, 0u32..8, 1_000.0f64..2_000_000.0, 1u64..500_000),
            1..60,
        ),
    ) {
        let mut inc = Network::new(n_nodes, NetworkConfig::default());
        let mut base = Network::new(
            n_nodes,
            NetworkConfig {
                baseline_full_scan: true,
                ..NetworkConfig::default()
            },
        );
        let mut now = 0u64;
        let mut live = Vec::new();
        for &(kind, s, d, bytes, dt) in &ops {
            now += dt;
            let t = t_us(now);
            match kind {
                0 => {
                    let src = NodeId(s % n_nodes as u32);
                    let dst = NodeId(d % n_nodes as u32);
                    if src == dst {
                        continue;
                    }
                    // The top of the byte range doubles as "unbounded".
                    let b = (bytes < 1_500_000.0).then_some(bytes);
                    let id = inc.start_flow(t, src, dst, b);
                    prop_assert_eq!(id, base.start_flow(t, src, dst, b));
                    live.push(id);
                }
                1 => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live.swap_remove((s as usize + d as usize) % live.len());
                    prop_assert_eq!(inc.end_flow(t, id), base.end_flow(t, id));
                }
                _ => {
                    inc.advance(t);
                    base.advance(t);
                }
            }
            prop_assert!(inc.debug_invariants_hold());
            for &id in &live {
                prop_assert_eq!(
                    inc.rate_of(id).to_bits(),
                    base.rate_of(id).to_bits(),
                    "rate diverges for {:?}",
                    id
                );
                prop_assert_eq!(inc.transferred_of(id).to_bits(), base.transferred_of(id).to_bits());
            }
            prop_assert_eq!(inc.next_completion(t), base.next_completion(t));
        }
    }
}
