//! Wire messages of the rescheduler protocol (§3.3).
//!
//! "We combine a custom XML based protocol with TCP/IP sockets to form the
//! communication subsystem of the rescheduler. The XML based protocol is
//! used for communications between the monitor, registry/scheduler and
//! commander entities."
//!
//! Every message is one XML document with root `<msg type="...">`. The same
//! encoding is used by the in-simulation entities (as payload bytes, so byte
//! counts are realistic) and by the real-TCP live mode.

use crate::doc::{parse, XmlElement, XmlError};
use crate::schema::{ApplicationSchema, ResourceRequirements};

/// Host state vocabulary of the protocol (paper Table 1, plus the
/// soft-state expiry state `Unavailable`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HostState {
    /// Willing and able to accept incoming HPCM-enabled applications.
    Free,
    /// Loaded; neither accepts nor evicts applications ("as is").
    Busy,
    /// Needs to offload applications onto another host.
    Overloaded,
    /// Lease expired or host explicitly withdrawn.
    Unavailable,
}

impl HostState {
    /// Protocol string form.
    pub fn as_str(self) -> &'static str {
        match self {
            HostState::Free => "free",
            HostState::Busy => "busy",
            HostState::Overloaded => "overloaded",
            HostState::Unavailable => "unavailable",
        }
    }

    /// Parse the protocol string form.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "free" => Some(HostState::Free),
            "busy" => Some(HostState::Busy),
            "overloaded" => Some(HostState::Overloaded),
            "unavailable" => Some(HostState::Unavailable),
            _ => None,
        }
    }

    /// Whether this host accepts migrated-in processes (Table 1).
    pub fn accepts_migration(self) -> bool {
        self == HostState::Free
    }

    /// Whether this host should migrate processes out (Table 1).
    pub fn wants_migration_out(self) -> bool {
        self == HostState::Overloaded
    }

    /// Whether the host is loaded (Table 1).
    pub fn is_loaded(self) -> bool {
        matches!(self, HostState::Busy | HostState::Overloaded)
    }
}

impl std::fmt::Display for HostState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Static host information sent once at registration.
#[derive(Debug, Clone, PartialEq)]
pub struct HostStatic {
    /// Hostname.
    pub name: String,
    /// Dotted-quad address (simulated hosts fabricate one).
    pub ip: String,
    /// Operating system label.
    pub os: String,
    /// Relative CPU speed.
    pub cpu_speed: f64,
    /// Processor count.
    pub n_cpus: u32,
    /// Physical memory, kilobytes.
    pub mem_kb: u64,
}

/// A named metric sample bag (load averages, idle %, KB/s, socket counts…).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Metrics(Vec<(String, f64)>);

impl Metrics {
    /// Empty bag.
    pub fn new() -> Self {
        Metrics(Vec::new())
    }

    /// Insert or replace a metric.
    pub fn set(&mut self, name: impl Into<String>, value: f64) {
        let name = name.into();
        if let Some(slot) = self.0.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.0.push((name, value));
        }
    }

    /// Look up a metric.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.0.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// All metrics in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.0.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no metrics are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// One migration-enabled process as reported in a heartbeat.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcReport {
    /// Simulator-wide pid.
    pub pid: u64,
    /// Application name (matches its schema).
    pub app: String,
    /// Start time on this host, seconds (the pid-file timestamp).
    pub start_time_s: f64,
    /// Estimated execution time from the application schema, seconds.
    pub est_exec_time_s: f64,
}

/// Which entity is registering with the registry/scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityRole {
    /// The per-host monitor (pushes heartbeats).
    Monitor,
    /// The per-host commander (receives migration commands).
    Commander,
    /// A lower-level registry/scheduler in a hierarchy.
    Registry,
}

impl EntityRole {
    /// Protocol string form.
    pub fn as_str(self) -> &'static str {
        match self {
            EntityRole::Monitor => "monitor",
            EntityRole::Commander => "commander",
            EntityRole::Registry => "registry",
        }
    }

    /// Parse the protocol string form.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "monitor" => Some(EntityRole::Monitor),
            "commander" => Some(EntityRole::Commander),
            "registry" => Some(EntityRole::Registry),
            _ => None,
        }
    }
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// One-time static registration of an entity with the registry.
    Register {
        /// Static host description.
        host: HostStatic,
        /// Which entity on that host is registering.
        role: EntityRole,
    },
    /// Periodic soft-state refresh: state + metrics + migratable processes.
    Heartbeat {
        /// Reporting hostname.
        host: String,
        /// Rule-evaluated local state.
        state: HostState,
        /// Raw metric samples backing the state decision.
        metrics: Metrics,
        /// Migration-enabled processes currently running.
        procs: Vec<ProcReport>,
    },
    /// Registry → commander: start migrating `pid` to `dest`.
    MigrationCommand {
        /// Commander's hostname (addressee).
        host: String,
        /// Process to migrate.
        pid: u64,
        /// Destination hostname.
        dest: String,
        /// Destination port for the state-transfer channel.
        dest_port: u16,
        /// Schema of the application, forwarded to initialize the process
        /// on the destination.
        schema: ApplicationSchema,
    },
    /// Commander/monitor → registry: ask for a destination candidate.
    CandidateRequest {
        /// Requesting hostname.
        host: String,
        /// Resources the process needs on the destination.
        requirements: ResourceRequirements,
    },
    /// Registry → requester: a destination, or none available.
    CandidateReply {
        /// Chosen destination hostname, if any.
        dest: Option<String>,
    },
    /// Commander → registry: migration finished (feeds scheduling history).
    MigrationComplete {
        /// Migrated pid (source numbering).
        pid: u64,
        /// Source hostname.
        from: String,
        /// Destination hostname.
        to: String,
        /// End-to-end migration time, seconds.
        migration_time_s: f64,
    },
    /// Registry → monitor (pull model): "report your current status now".
    StatusQuery {
        /// Queried hostname.
        host: String,
    },
    /// Commander → registry: explicit receipt of a [`Message::MigrationCommand`].
    ///
    /// The registry retransmits unacknowledged commands with exponential
    /// backoff; this message stops the retransmit timer.
    CommandAck {
        /// Acknowledging commander's hostname.
        host: String,
        /// Pid the acknowledged command referred to.
        pid: u64,
        /// False when the commander rejected the command (e.g. pid unknown).
        ok: bool,
    },
    /// Registry → monitor: "I don't know you" — sent when a heartbeat
    /// arrives from a host that is not registered (typically after a
    /// registry restart lost the soft state). The monitor answers by
    /// re-sending its [`Message::Register`] documents.
    ReRegister {
        /// Addressee hostname.
        host: String,
    },
    /// Child registry → parent registry: periodic aggregate *health
    /// condition* of the child's domain (§3.2: each lower-level registry
    /// "has its own health condition, which indicates its overall workload
    /// and availability of each kind of resource"). The parent uses the
    /// latest report per child to order its cross-domain candidate search.
    DomainReport {
        /// Reporting registry's domain name.
        domain: String,
        /// Hosts currently free.
        free: u32,
        /// Hosts currently busy.
        busy: u32,
        /// Hosts currently overloaded.
        overloaded: u32,
        /// Hosts with expired leases.
        unavailable: u32,
        /// Sum of reported 1-minute load averages.
        load_sum: f64,
        /// Number of load samples in the sum.
        load_samples: u32,
    },
    /// Generic acknowledgement.
    Ack {
        /// True on success.
        ok: bool,
        /// Optional human-readable detail.
        info: String,
    },
}

impl Message {
    /// Message type tag used on the wire.
    pub fn type_tag(&self) -> &'static str {
        match self {
            Message::Register { .. } => "register",
            Message::Heartbeat { .. } => "heartbeat",
            Message::MigrationCommand { .. } => "migration-command",
            Message::CandidateRequest { .. } => "candidate-request",
            Message::CandidateReply { .. } => "candidate-reply",
            Message::MigrationComplete { .. } => "migration-complete",
            Message::StatusQuery { .. } => "status-query",
            Message::CommandAck { .. } => "command-ack",
            Message::ReRegister { .. } => "re-register",
            Message::DomainReport { .. } => "domain-report",
            Message::Ack { .. } => "ack",
        }
    }

    /// Serialize to the XML element form.
    pub fn to_xml(&self) -> XmlElement {
        let root = XmlElement::new("msg").attr("type", self.type_tag());
        match self {
            Message::Register { host, role } => root.attr("role", role.as_str()).child(
                XmlElement::new("host")
                    .attr("name", &host.name)
                    .field("ip", &host.ip)
                    .field("os", &host.os)
                    .field("cpu-speed", host.cpu_speed)
                    .field("n-cpus", host.n_cpus)
                    .field("mem-kb", host.mem_kb),
            ),
            Message::Heartbeat {
                host,
                state,
                metrics,
                procs,
            } => {
                let mut el = root.field("host", host).field("state", state.as_str());
                let mut metrics_el = XmlElement::new("metrics");
                for (name, value) in metrics.iter() {
                    metrics_el = metrics_el.child(
                        XmlElement::new("metric")
                            .attr("name", name)
                            .text(value.to_string()),
                    );
                }
                el = el.child(metrics_el);
                let mut procs_el = XmlElement::new("procs");
                for p in procs {
                    procs_el = procs_el.child(
                        XmlElement::new("proc")
                            .attr("pid", p.pid)
                            .attr("app", &p.app)
                            .attr("start", p.start_time_s)
                            .attr("est", p.est_exec_time_s),
                    );
                }
                el.child(procs_el)
            }
            Message::MigrationCommand {
                host,
                pid,
                dest,
                dest_port,
                schema,
            } => root
                .field("host", host)
                .field("pid", pid)
                .field("dest", dest)
                .field("dest-port", dest_port)
                .child(schema.to_xml()),
            Message::CandidateRequest { host, requirements } => root.field("host", host).child(
                XmlElement::new("requirements")
                    .field("mem-kb", requirements.mem_kb)
                    .field("disk-kb", requirements.disk_kb)
                    .field("min-cpu-speed", requirements.min_cpu_speed),
            ),
            Message::CandidateReply { dest } => match dest {
                Some(d) => root.field("dest", d),
                None => root.child(XmlElement::new("none")),
            },
            Message::MigrationComplete {
                pid,
                from,
                to,
                migration_time_s,
            } => root
                .field("pid", pid)
                .field("from", from)
                .field("to", to)
                .field("migration-time-s", migration_time_s),
            Message::StatusQuery { host } => root.field("host", host),
            Message::CommandAck { host, pid, ok } => {
                root.field("host", host).field("pid", pid).field("ok", ok)
            }
            Message::ReRegister { host } => root.field("host", host),
            Message::DomainReport {
                domain,
                free,
                busy,
                overloaded,
                unavailable,
                load_sum,
                load_samples,
            } => root.field("domain", domain).child(
                XmlElement::new("health")
                    .field("free", free)
                    .field("busy", busy)
                    .field("overloaded", overloaded)
                    .field("unavailable", unavailable)
                    .field("load-sum", load_sum)
                    .field("load-samples", load_samples),
            ),
            Message::Ack { ok, info } => root.field("ok", ok).field("info", info),
        }
    }

    /// Serialize to the full wire document.
    pub fn to_document(&self) -> String {
        self.to_xml().to_document()
    }

    /// Parse a wire document.
    pub fn decode(doc: &str) -> Result<Message, XmlError> {
        let el = parse(doc)?;
        Self::from_xml(&el)
    }

    /// Parse the XML element form.
    pub fn from_xml(el: &XmlElement) -> Result<Message, XmlError> {
        if el.name != "msg" {
            return Err(XmlError::UnexpectedRoot(el.name.clone()));
        }
        let ty = el
            .get_attr("type")
            .ok_or_else(|| XmlError::MissingField("type".to_string()))?;
        match ty {
            "register" => {
                let role_text = el.get_attr("role").unwrap_or("monitor");
                let role = EntityRole::parse(role_text)
                    .ok_or_else(|| XmlError::BadField("role".to_string(), role_text.to_string()))?;
                let h = el
                    .find("host")
                    .ok_or_else(|| XmlError::MissingField("host".to_string()))?;
                Ok(Message::Register {
                    role,
                    host: HostStatic {
                        name: h
                            .get_attr("name")
                            .ok_or_else(|| XmlError::MissingField("name".to_string()))?
                            .to_string(),
                        ip: h
                            .field_text("ip")
                            .ok_or_else(|| XmlError::MissingField("ip".to_string()))?,
                        os: h
                            .field_text("os")
                            .ok_or_else(|| XmlError::MissingField("os".to_string()))?,
                        cpu_speed: h.field_parse("cpu-speed")?,
                        n_cpus: h.field_parse("n-cpus")?,
                        mem_kb: h.field_parse("mem-kb")?,
                    },
                })
            }
            "heartbeat" => {
                let state_text = el
                    .field_text("state")
                    .ok_or_else(|| XmlError::MissingField("state".to_string()))?;
                let state = HostState::parse(&state_text)
                    .ok_or_else(|| XmlError::BadField("state".to_string(), state_text))?;
                let mut metrics = Metrics::new();
                if let Some(m) = el.find("metrics") {
                    for metric in m.find_all("metric") {
                        let name = metric
                            .get_attr("name")
                            .ok_or_else(|| XmlError::MissingField("metric name".to_string()))?;
                        let text = metric.text_str().map_or_else(
                            || std::borrow::Cow::Owned(metric.text_content()),
                            std::borrow::Cow::Borrowed,
                        );
                        let value: f64 = text
                            .trim()
                            .parse()
                            .map_err(|_| XmlError::BadField(name.to_string(), text.to_string()))?;
                        metrics.set(name, value);
                    }
                }
                let mut procs = Vec::new();
                if let Some(ps) = el.find("procs") {
                    for p in ps.find_all("proc") {
                        procs.push(ProcReport {
                            pid: attr_parse(p, "pid")?,
                            app: p
                                .get_attr("app")
                                .ok_or_else(|| XmlError::MissingField("app".to_string()))?
                                .to_string(),
                            start_time_s: attr_parse(p, "start")?,
                            est_exec_time_s: attr_parse(p, "est")?,
                        });
                    }
                }
                Ok(Message::Heartbeat {
                    host: el
                        .field_text("host")
                        .ok_or_else(|| XmlError::MissingField("host".to_string()))?,
                    state,
                    metrics,
                    procs,
                })
            }
            "migration-command" => {
                let schema_el = el
                    .find("application-schema")
                    .ok_or_else(|| XmlError::MissingField("application-schema".to_string()))?;
                Ok(Message::MigrationCommand {
                    host: el
                        .field_text("host")
                        .ok_or_else(|| XmlError::MissingField("host".to_string()))?,
                    pid: el.field_parse("pid")?,
                    dest: el
                        .field_text("dest")
                        .ok_or_else(|| XmlError::MissingField("dest".to_string()))?,
                    dest_port: el.field_parse("dest-port")?,
                    schema: ApplicationSchema::from_xml(schema_el)?,
                })
            }
            "candidate-request" => {
                let req = el
                    .find("requirements")
                    .ok_or_else(|| XmlError::MissingField("requirements".to_string()))?;
                Ok(Message::CandidateRequest {
                    host: el
                        .field_text("host")
                        .ok_or_else(|| XmlError::MissingField("host".to_string()))?,
                    requirements: ResourceRequirements {
                        mem_kb: req.field_parse("mem-kb")?,
                        disk_kb: req.field_parse("disk-kb")?,
                        min_cpu_speed: req.field_parse("min-cpu-speed")?,
                    },
                })
            }
            "candidate-reply" => Ok(Message::CandidateReply {
                dest: el.field_text("dest"),
            }),
            "migration-complete" => Ok(Message::MigrationComplete {
                pid: el.field_parse("pid")?,
                from: el
                    .field_text("from")
                    .ok_or_else(|| XmlError::MissingField("from".to_string()))?,
                to: el
                    .field_text("to")
                    .ok_or_else(|| XmlError::MissingField("to".to_string()))?,
                migration_time_s: el.field_parse("migration-time-s")?,
            }),
            "status-query" => Ok(Message::StatusQuery {
                host: el
                    .field_text("host")
                    .ok_or_else(|| XmlError::MissingField("host".to_string()))?,
            }),
            "command-ack" => Ok(Message::CommandAck {
                host: el
                    .field_text("host")
                    .ok_or_else(|| XmlError::MissingField("host".to_string()))?,
                pid: el.field_parse("pid")?,
                ok: el.field_parse("ok")?,
            }),
            "re-register" => Ok(Message::ReRegister {
                host: el
                    .field_text("host")
                    .ok_or_else(|| XmlError::MissingField("host".to_string()))?,
            }),
            "domain-report" => {
                let h = el
                    .find("health")
                    .ok_or_else(|| XmlError::MissingField("health".to_string()))?;
                Ok(Message::DomainReport {
                    domain: el
                        .field_text("domain")
                        .ok_or_else(|| XmlError::MissingField("domain".to_string()))?,
                    free: h.field_parse("free")?,
                    busy: h.field_parse("busy")?,
                    overloaded: h.field_parse("overloaded")?,
                    unavailable: h.field_parse("unavailable")?,
                    load_sum: h.field_parse("load-sum")?,
                    load_samples: h.field_parse("load-samples")?,
                })
            }
            "ack" => Ok(Message::Ack {
                ok: el.field_parse("ok")?,
                info: el.field_text("info").unwrap_or_default(),
            }),
            other => Err(XmlError::BadField("type".to_string(), other.to_string())),
        }
    }
}

fn attr_parse<T: std::str::FromStr>(el: &XmlElement, key: &str) -> Result<T, XmlError> {
    let raw = el
        .get_attr(key)
        .ok_or_else(|| XmlError::MissingField(key.to_string()))?;
    raw.parse()
        .map_err(|_| XmlError::BadField(key.to_string(), raw.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Message) {
        let doc = m.to_document();
        let back = Message::decode(&doc).unwrap();
        assert_eq!(back, m, "doc: {doc}");
    }

    #[test]
    fn register_roundtrip() {
        for role in [
            EntityRole::Monitor,
            EntityRole::Commander,
            EntityRole::Registry,
        ] {
            roundtrip(Message::Register {
                role,
                host: HostStatic {
                    name: "ws1".to_string(),
                    ip: "10.0.0.1".to_string(),
                    os: "SunOS 5.8".to_string(),
                    cpu_speed: 1.0,
                    n_cpus: 1,
                    mem_kb: 131_072,
                },
            });
        }
    }

    #[test]
    fn heartbeat_roundtrip() {
        let mut metrics = Metrics::new();
        metrics.set("load1", 0.97);
        metrics.set("nproc", 112.0);
        metrics.set("cpu_idle", 48.5);
        roundtrip(Message::Heartbeat {
            host: "ws2".to_string(),
            state: HostState::Busy,
            metrics,
            procs: vec![ProcReport {
                pid: 1234,
                app: "test_tree".to_string(),
                start_time_s: 280.0,
                est_exec_time_s: 600.0,
            }],
        });
    }

    #[test]
    fn migration_command_roundtrip() {
        roundtrip(Message::MigrationCommand {
            host: "ws1".to_string(),
            pid: 1234,
            dest: "ws4".to_string(),
            dest_port: 7801,
            schema: ApplicationSchema::compute("test_tree", 600.0),
        });
    }

    #[test]
    fn candidate_roundtrips() {
        roundtrip(Message::CandidateRequest {
            host: "ws1".to_string(),
            requirements: ResourceRequirements {
                mem_kb: 1024,
                disk_kb: 0,
                min_cpu_speed: 0.5,
            },
        });
        roundtrip(Message::CandidateReply {
            dest: Some("ws4".to_string()),
        });
        roundtrip(Message::CandidateReply { dest: None });
    }

    #[test]
    fn completion_and_ack_roundtrip() {
        roundtrip(Message::MigrationComplete {
            pid: 7,
            from: "ws1".to_string(),
            to: "ws4".to_string(),
            migration_time_s: 6.71,
        });
        roundtrip(Message::Ack {
            ok: true,
            info: "registered".to_string(),
        });
        roundtrip(Message::StatusQuery {
            host: "ws3".to_string(),
        });
    }

    #[test]
    fn recovery_message_roundtrips() {
        roundtrip(Message::CommandAck {
            host: "ws1".to_string(),
            pid: 1234,
            ok: true,
        });
        roundtrip(Message::CommandAck {
            host: "ws1".to_string(),
            pid: 1234,
            ok: false,
        });
        roundtrip(Message::ReRegister {
            host: "ws2".to_string(),
        });
    }

    #[test]
    fn domain_report_roundtrip() {
        roundtrip(Message::DomainReport {
            domain: "cluster-a".to_string(),
            free: 12,
            busy: 3,
            overloaded: 1,
            unavailable: 0,
            load_sum: 7.25,
            load_samples: 16,
        });
    }

    #[test]
    fn host_state_protocol_strings() {
        for s in [
            HostState::Free,
            HostState::Busy,
            HostState::Overloaded,
            HostState::Unavailable,
        ] {
            assert_eq!(HostState::parse(s.as_str()), Some(s));
        }
        assert_eq!(HostState::parse("idle"), None);
    }

    #[test]
    fn table1_action_matrix() {
        // Paper Table 1: state x (loaded, migrate in, migrate out).
        assert!(!HostState::Free.is_loaded());
        assert!(HostState::Free.accepts_migration());
        assert!(!HostState::Free.wants_migration_out());

        assert!(HostState::Busy.is_loaded());
        assert!(!HostState::Busy.accepts_migration());
        assert!(!HostState::Busy.wants_migration_out());

        assert!(HostState::Overloaded.is_loaded());
        assert!(!HostState::Overloaded.accepts_migration());
        assert!(HostState::Overloaded.wants_migration_out());
    }

    #[test]
    fn unknown_type_rejected() {
        let doc = r#"<msg type="warp-drive"/>"#;
        assert!(Message::decode(doc).is_err());
    }

    #[test]
    fn metrics_set_replaces() {
        let mut m = Metrics::new();
        m.set("x", 1.0);
        m.set("x", 2.0);
        assert_eq!(m.get("x"), Some(2.0));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("y"), None);
    }
}
