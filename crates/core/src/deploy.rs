//! Deployment helpers: wire a registry, monitors and commanders onto a
//! simulated cluster the way the paper's evaluation does.

use crate::commander::Commander;
use crate::hooks::{ReschedHooks, SchemaBook};
use crate::monitor::{Monitor, MonitorConfig, StateSource};
use crate::regcore::{Endpoint, MalleableJob, RegistryConfig};
use crate::registry::RegistryScheduler;
use ars_obs::Obs;
use ars_rules::{MonitoringFrequency, Policy};
use ars_sim::{HostId, Pid, Sim, SpawnOpts};
use ars_simcore::SimDuration;
use ars_sysinfo::Ambient;

/// Handles to a deployed rescheduler.
pub struct Deployment {
    /// The registry/scheduler process.
    pub registry: Pid,
    /// Monitor process per monitored host (same order as `monitored`).
    pub monitors: Vec<Pid>,
    /// Commander process per monitored host.
    pub commanders: Vec<Pid>,
    /// Shared decision log.
    pub hooks: ReschedHooks,
    /// Shared application-schema book.
    pub schemas: SchemaBook,
}

/// Tunables for [`deploy`].
pub struct DeployConfig {
    /// Policy used by monitors (state) and the registry (destinations).
    pub policy: Policy,
    /// Per-state monitoring frequency.
    pub freq: MonitoringFrequency,
    /// Overload confirmation window.
    pub overload_confirm: SimDuration,
    /// Ambient workstation baseline for the sensors.
    pub ambient: Ambient,
    /// Classify state with the paper rule file instead of the policy.
    pub use_paper_rules: bool,
    /// Registry soft-state lease. Must comfortably exceed the heartbeat
    /// interval or every entry expires between refreshes.
    pub lease: SimDuration,
    /// Self-adjusting confirmation windows for the monitors (§6).
    pub adaptive: Option<crate::adaptive::AdaptiveConfig>,
    /// Push-model heartbeats (the paper's choice); `false` switches the
    /// deployment to on-change reports + registry pulls (§3.2).
    pub push: bool,
    /// Observability session threaded into the registry, monitors and
    /// commanders. Disabled by default (zero cost); enable and also set
    /// `SimConfig::obs` / `HpcmConfig::obs` to the same handle for a
    /// cluster-wide event stream.
    pub obs: Obs,
    /// Turn on registry fault tolerance ([`crate::RegistryFt`]) for every
    /// registry deployed by [`deploy_tree`]: parent-liveness detection via
    /// report ACKs, orphan re-parenting to the grandparent carried in the
    /// tree topology, escalation deadlines and stale-health decay. Off by
    /// default so fault-free traces stay byte-identical.
    pub registry_ft: bool,
    /// Malleable applications the registry may grow/shrink with
    /// `expand:`/`shrink:` reconfiguration commands (consumed by [`deploy`];
    /// tree deployments ignore it — resize decisions are a single-registry
    /// concern). Empty by default: the registry's heartbeat path is then
    /// byte-identical to a build without the reconfiguration engine.
    pub malleable_jobs: Vec<MalleableJob>,
    /// Minimum spacing between reconfiguration commands per job.
    pub resize_cooldown: SimDuration,
}

impl Default for DeployConfig {
    fn default() -> Self {
        DeployConfig {
            policy: Policy::paper_policy2(),
            freq: MonitoringFrequency::default(),
            overload_confirm: SimDuration::from_secs(60),
            ambient: Ambient::default(),
            use_paper_rules: false,
            lease: SimDuration::from_secs(35),
            adaptive: None,
            push: true,
            obs: Obs::disabled(),
            registry_ft: false,
            malleable_jobs: Vec::new(),
            resize_cooldown: SimDuration::from_secs(30),
        }
    }
}

/// Deploy a registry on `registry_host` plus a monitor + commander pair on
/// every host in `monitored`.
pub fn deploy(
    sim: &mut Sim,
    registry_host: HostId,
    monitored: &[HostId],
    cfg: DeployConfig,
) -> Deployment {
    let hooks = ReschedHooks::new();
    let schemas = SchemaBook::new();

    let mut reg_cfg = RegistryConfig::new(cfg.policy.clone());
    reg_cfg.name = format!("registry@h{}", registry_host.0);
    reg_cfg.lease = cfg.lease;
    reg_cfg.pull = !cfg.push;
    reg_cfg.obs = cfg.obs.clone();
    reg_cfg.malleable_jobs = cfg.malleable_jobs.clone();
    reg_cfg.resize_cooldown = cfg.resize_cooldown;
    let registry = sim.spawn(
        registry_host,
        Box::new(RegistryScheduler::new(
            reg_cfg,
            schemas.clone(),
            hooks.clone(),
        )),
        SpawnOpts::named("ars_registry"),
    );

    let mut monitors = Vec::new();
    let mut commanders = Vec::new();
    for &host in monitored {
        let state_source = if cfg.use_paper_rules {
            StateSource::Rules(ars_rules::RuleSet::paper())
        } else {
            StateSource::Policy(cfg.policy.clone())
        };
        // Commander first so the monitor can be pointed at it: after a
        // registry restart the monitor relays the `ReRegister` nudge to the
        // local commander, which re-sends its own `Register`.
        let commander = sim.spawn(
            host,
            Box::new(Commander::new(registry).with_obs(cfg.obs.clone())),
            SpawnOpts::named("ars_commander"),
        );
        commanders.push(commander);
        let mon_cfg = MonitorConfig {
            registry,
            state_source,
            freq: cfg.freq,
            ambient: cfg.ambient.clone(),
            overload_confirm: cfg.overload_confirm,
            adaptive: cfg.adaptive.clone(),
            push: cfg.push,
            commander: Some(commander),
        };
        monitors.push(sim.spawn(
            host,
            Box::new(Monitor::new(mon_cfg, schemas.clone()).with_obs(cfg.obs.clone())),
            SpawnOpts::named("ars_monitor"),
        ));
    }

    Deployment {
        registry,
        monitors,
        commanders,
        hooks,
        schemas,
    }
}

/// Handles to a deployed two-level registry hierarchy.
pub struct HierarchicalDeployment {
    /// The root (parent) registry routing cross-domain searches.
    pub root: Pid,
    /// One leaf registry per domain, in domain order.
    pub leaves: Vec<Pid>,
    /// Monitor process per monitored host (same order as `monitored`).
    pub monitors: Vec<Pid>,
    /// Commander process per monitored host.
    pub commanders: Vec<Pid>,
    /// Shared decision log (all registries write to it).
    pub hooks: ReschedHooks,
    /// Shared application-schema book.
    pub schemas: SchemaBook,
}

/// Deploy a two-level registry hierarchy: a root registry plus `domains`
/// leaf registries on `registry_host`, with the hosts in `monitored`
/// assigned to domains round-robin. Each leaf pushes periodic
/// [`ars_xmlwire::Message::DomainReport`] summaries to the root, which the
/// root uses to probe the freest sibling domain first when a leaf
/// escalates a candidate search.
///
/// This is [`deploy_tree`] with a single fan-out level; the spawn order
/// and process names are identical to what this function always produced.
pub fn deploy_hierarchical(
    sim: &mut Sim,
    registry_host: HostId,
    monitored: &[HostId],
    domains: usize,
    cfg: DeployConfig,
) -> HierarchicalDeployment {
    let t = deploy_tree(sim, registry_host, monitored, &[domains.max(1)], cfg);
    HierarchicalDeployment {
        root: t.root,
        leaves: t.leaves,
        monitors: t.monitors,
        commanders: t.commanders,
        hooks: t.hooks,
        schemas: t.schemas,
    }
}

/// Handles to a deployed arbitrary-depth registry tree.
pub struct TreeDeployment {
    /// The root registry.
    pub root: Pid,
    /// Registries by level: `levels[0]` is `[root]`, the last level is the
    /// leaves.
    pub levels: Vec<Vec<Pid>>,
    /// The leaf registries (same pids as the last level).
    pub leaves: Vec<Pid>,
    /// Monitor process per monitored host (same order as `monitored`).
    pub monitors: Vec<Pid>,
    /// Commander process per monitored host.
    pub commanders: Vec<Pid>,
    /// Shared decision log (all registries write to it).
    pub hooks: ReschedHooks,
    /// Shared application-schema book.
    pub schemas: SchemaBook,
}

/// Deploy an arbitrary-depth registry tree on `registry_host`: a root,
/// then one level of registries per entry of `fanout` (level `L` has
/// `fanout[0] * … * fanout[L-1]` nodes, node `i` parented to node
/// `i / fanout[L-1]` of the level above). The last level is the leaves;
/// hosts in `monitored` are assigned to leaves round-robin.
///
/// Candidate searches escalate leaf → … → root (each level probes its
/// other children before relaying upward), and every registry pushes
/// rate-limited [`ars_xmlwire::Message::DomainReport`] summaries to its
/// parent — mids aggregate their whole subtree — so registry fan-in stays
/// bounded at any cluster size.
pub fn deploy_tree(
    sim: &mut Sim,
    registry_host: HostId,
    monitored: &[HostId],
    fanout: &[usize],
    cfg: DeployConfig,
) -> TreeDeployment {
    let hooks = ReschedHooks::new();
    let schemas = SchemaBook::new();
    let fanout: Vec<usize> = if fanout.is_empty() {
        vec![1]
    } else {
        fanout.iter().map(|&f| f.max(1)).collect()
    };
    let depth = fanout.len();

    let mut root_cfg = RegistryConfig::new(cfg.policy.clone());
    root_cfg.name = format!("root@h{}", registry_host.0);
    root_cfg.lease = cfg.lease;
    root_cfg.obs = cfg.obs.clone();
    root_cfg.ft.enabled = cfg.registry_ft;
    let root = sim.spawn(
        registry_host,
        Box::new(RegistryScheduler::new(
            root_cfg,
            schemas.clone(),
            hooks.clone(),
        )),
        SpawnOpts::named("ars_registry_root"),
    );

    let mut levels: Vec<Vec<Pid>> = vec![vec![root]];
    for (l, &f) in fanout.iter().enumerate() {
        let level = l + 1; // 1-based: level 0 is the root
        let count = levels[l].len() * f;
        let is_leaf = level == depth;
        let mut nodes = Vec::with_capacity(count);
        for i in 0..count {
            let parent = levels[l][i / f];
            let mut node_cfg = RegistryConfig::new(cfg.policy.clone());
            node_cfg.name = if is_leaf {
                format!("domain{i}@h{}", registry_host.0)
            } else {
                format!("mid{level}.{i}@h{}", registry_host.0)
            };
            node_cfg.lease = cfg.lease;
            // Only leaves field heartbeats, so only they need the pull
            // switch; mids and the root just route searches and reports.
            if is_leaf {
                node_cfg.pull = !cfg.push;
            }
            node_cfg.parent = Some(Endpoint::from(parent));
            node_cfg.obs = cfg.obs.clone();
            if cfg.registry_ft {
                node_cfg.ft.enabled = true;
                // The grandparent is this node's fallback parent: the
                // node above its parent, or `None` when the parent is
                // already the root (those children buffer-and-retry).
                node_cfg.ft.grandparent = if l >= 1 {
                    Some(Endpoint::from(levels[l - 1][(i / f) / fanout[l - 1]]))
                } else {
                    None
                };
            }
            let spawn_name = if is_leaf {
                format!("ars_registry_d{i}")
            } else {
                format!("ars_registry_m{level}_{i}")
            };
            nodes.push(sim.spawn(
                registry_host,
                Box::new(RegistryScheduler::new(
                    node_cfg,
                    schemas.clone(),
                    hooks.clone(),
                )),
                SpawnOpts::named(spawn_name),
            ));
        }
        levels.push(nodes);
    }
    let leaves = levels[depth].clone();

    let mut monitors = Vec::new();
    let mut commanders = Vec::new();
    for (i, &host) in monitored.iter().enumerate() {
        let registry = leaves[i % leaves.len()];
        let state_source = if cfg.use_paper_rules {
            StateSource::Rules(ars_rules::RuleSet::paper())
        } else {
            StateSource::Policy(cfg.policy.clone())
        };
        let commander = sim.spawn(
            host,
            Box::new(Commander::new(registry).with_obs(cfg.obs.clone())),
            SpawnOpts::named("ars_commander"),
        );
        commanders.push(commander);
        let mon_cfg = MonitorConfig {
            registry,
            state_source,
            freq: cfg.freq,
            ambient: cfg.ambient.clone(),
            overload_confirm: cfg.overload_confirm,
            adaptive: cfg.adaptive.clone(),
            push: cfg.push,
            commander: Some(commander),
        };
        monitors.push(sim.spawn(
            host,
            Box::new(Monitor::new(mon_cfg, schemas.clone()).with_obs(cfg.obs.clone())),
            SpawnOpts::named("ars_monitor"),
        ));
    }

    TreeDeployment {
        root,
        levels,
        leaves,
        monitors,
        commanders,
        hooks,
        schemas,
    }
}
