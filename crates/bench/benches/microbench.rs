//! Criterion microbenchmarks for the runtime-system building blocks:
//! the rule engine, the XML wire protocol, the checkpoint codec, the DES
//! kernel, and a full small-scale migration.

use ars_apps::{TestTree, TestTreeConfig};
use ars_hpcm::{HpcmConfig, HpcmHooks, HpcmShell, MigratableApp};
use ars_rules::{Expr, Policy, RuleSet};
use ars_sim::{HostId, Sim, SimConfig};
use ars_simcore::{EventQueue, SharedResource, SimTime};
use ars_simhost::{HostConfig, LoadAvg};
use ars_xmlwire::{ApplicationSchema, HostState, Message, Metrics, ProcReport};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn paper_metrics() -> Metrics {
    let mut m = Metrics::new();
    m.set("processorStatus", 47.0);
    m.set("ntStatIpv4:ESTABLISHED", 820.0);
    m.set("memAvail", 22.0);
    m.set("loadAvg1", 1.7);
    m.set("nproc", 120.0);
    m.set("netFlowMBps", 2.5);
    m
}

fn bench_rules(c: &mut Criterion) {
    let rules = RuleSet::paper();
    let metrics = paper_metrics();
    c.bench_function("rules/evaluate_paper_ruleset", |b| {
        b.iter(|| rules.evaluate(black_box(&metrics)).unwrap())
    });
    c.bench_function("rules/parse_complex_expression", |b| {
        b.iter(|| Expr::parse(black_box("( 40% * r 4 + 30% * r1 + 30% * r3 ) & r2")).unwrap())
    });
    let policy = Policy::paper_policy3();
    c.bench_function("rules/policy_should_migrate", |b| {
        b.iter(|| policy.should_migrate(black_box(&metrics)))
    });
}

fn bench_xml(c: &mut Criterion) {
    let msg = Message::Heartbeat {
        host: "ws1".to_string(),
        state: HostState::Busy,
        metrics: paper_metrics(),
        procs: vec![ProcReport {
            pid: 42,
            app: "test_tree".to_string(),
            start_time_s: 280.0,
            est_exec_time_s: 600.0,
        }],
    };
    let doc = msg.to_document();
    c.bench_function("xml/encode_heartbeat", |b| b.iter(|| msg.to_document()));
    c.bench_function("xml/decode_heartbeat", |b| {
        b.iter(|| Message::decode(black_box(&doc)).unwrap())
    });
    let schema = ApplicationSchema::compute("test_tree", 600.0);
    c.bench_function("xml/schema_roundtrip", |b| {
        b.iter(|| {
            let d = schema.to_xml().to_document();
            ApplicationSchema::from_document(black_box(&d)).unwrap()
        })
    });
}

fn bench_codec(c: &mut Criterion) {
    let mut app = TestTree::new(TestTreeConfig::small());
    // Advance a few chunks so the checkpoint carries real values.
    for _ in 0..4 {
        let _ = &mut app;
    }
    c.bench_function("codec/test_tree_save", |b| b.iter(|| app.save()));
    let saved = app.save();
    c.bench_function("codec/test_tree_restore", |b| {
        b.iter(|| TestTree::restore(black_box(&saved.eager), None))
    });
}

fn bench_kernel(c: &mut Criterion) {
    c.bench_function("kernel/event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(SimTime::from_micros((i * 7919) % 100_000), i);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            n
        })
    });
    // Steady-state queue churn at cluster scale: 1e5 pending events, each
    // iteration schedules, cancels and fires — the exact op mix the
    // completion-event resync produces.
    c.bench_function("kernel/event_queue_churn_100k_pending", |b| {
        let mut q = EventQueue::new();
        for i in 0..100_000u64 {
            q.push(SimTime::from_micros((i * 7919) % 1_000_000_000), i);
        }
        let mut i = 100_000u64;
        b.iter(|| {
            // Push two (one immediately cancelled), pop one: the pending set
            // stays ~1e5 as every cancelled entry is eventually skipped.
            i += 1;
            let at = SimTime::from_micros((i * 7919) % 1_000_000_000);
            let id = q.push(at, i);
            q.cancel(id);
            q.push(at, i);
            q.pop()
        })
    });
    c.bench_function("kernel/shared_resource_16_jobs", |b| {
        b.iter(|| {
            let mut r = SharedResource::new(1.0);
            for i in 0..16 {
                r.add_job(SimTime::ZERO, Some(1.0 + i as f64), 1.0);
            }
            r.advance(SimTime::from_secs(200));
            r.served_total()
        })
    });
    c.bench_function("kernel/load_average_hour", |b| {
        b.iter(|| {
            let mut la = LoadAvg::new();
            for i in 1..=720u64 {
                la.sample(SimTime::from_secs(i * 5), (i % 4) as usize);
            }
            la.one()
        })
    });
}

fn bench_destination_selection(c: &mut Criterion) {
    use ars_rescheduler::{CoreInput, Endpoint, RegistryConfig, RegistryCore, SchemaBook};
    use ars_rules::Policy;
    use ars_xmlwire::{EntityRole, HostStatic, Message, ResourceRequirements};

    // A 1024-host cluster where most machines are loaded and the few free
    // ones sit at the end of the registration order — the worst case for the
    // linear scan and the common case after hours of uptime. The core is
    // populated the way every driver populates it: Register + Heartbeat
    // inputs through `handle`.
    let now = SimTime::from_secs(100);
    let build = |linear: bool| {
        let mut cfg = RegistryConfig::new(Policy::paper_policy2());
        cfg.linear_first_fit = linear;
        let mut core = RegistryCore::new(cfg, SchemaBook::new());
        let mut fx = Vec::new();
        for i in 0..1024u32 {
            let free = i >= 1000;
            let mut m = Metrics::new();
            m.set("loadAvg1", if free { 0.2 } else { 2.5 });
            m.set("nproc", if free { 60.0 } else { 180.0 });
            m.set("memAvail", 50.0);
            m.set("diskAvailKb", 4_000_000.0);
            let from = Endpoint(u64::from(i) + 1);
            core.handle(
                now,
                CoreInput::Message {
                    from,
                    msg: Message::Register {
                        host: HostStatic {
                            name: format!("ws{i}"),
                            ip: format!("10.0.0.{i}"),
                            os: "SunOS 5.8".to_string(),
                            cpu_speed: 1.0,
                            n_cpus: 1,
                            mem_kb: 131_072,
                        },
                        role: EntityRole::Monitor,
                    },
                },
                &mut fx,
            );
            core.handle(
                now,
                CoreInput::Message {
                    from,
                    msg: Message::Heartbeat {
                        host: format!("ws{i}"),
                        state: if free {
                            HostState::Free
                        } else {
                            HostState::Busy
                        },
                        metrics: m,
                        procs: Vec::new(),
                    },
                },
                &mut fx,
            );
            fx.clear();
        }
        core
    };
    let req = ResourceRequirements {
        mem_kb: 24_576,
        disk_kb: 1_024,
        min_cpu_speed: 0.5,
    };
    let linear = build(true);
    let indexed = build(false);
    let pick = |core: &RegistryCore| {
        core.destination_for(&req, "ws0", now)
            .map(|e| e.name.to_string())
    };
    assert_eq!(
        pick(&linear),
        Some("ws1000".to_string()),
        "the first free host past the loaded prefix"
    );
    assert_eq!(
        pick(&linear),
        pick(&indexed),
        "both searches must agree on the destination"
    );
    c.bench_function("registry/first_fit_linear_1024_hosts", |b| {
        b.iter(|| {
            linear
                .destination_for(black_box(&req), "ws0", now)
                .map(|e| e.name.clone())
        })
    });
    c.bench_function("registry/first_fit_indexed_1024_hosts", |b| {
        b.iter(|| {
            indexed
                .destination_for(black_box(&req), "ws0", now)
                .map(|e| e.name.clone())
        })
    });
}

fn bench_migration(c: &mut Criterion) {
    let mut group = c.benchmark_group("migration");
    group.sample_size(20);
    group.bench_function("small_end_to_end_sim", |b| {
        b.iter(|| {
            let mut sim = Sim::new(
                vec![HostConfig::named("ws1"), HostConfig::named("ws2")],
                SimConfig::default(),
            );
            let hooks = HpcmHooks::new();
            let pid = HpcmShell::spawn_on(
                &mut sim,
                HostId(0),
                TestTree::new(TestTreeConfig::small()),
                HpcmConfig::default(),
                None,
                hooks.clone(),
            );
            sim.run_until(SimTime::from_secs_f64(0.5));
            sim.kernel_mut().hosts[0].write_file(ars_hpcm::dest_file_path(pid), "ws2:7801");
            sim.signal(pid, ars_hpcm::MIGRATE_SIGNAL);
            sim.run_until(SimTime::from_secs(60));
            assert_eq!(hooks.migration_count(), 1);
            hooks.completion_of("test_tree").is_some()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rules,
    bench_xml,
    bench_codec,
    bench_kernel,
    bench_destination_selection,
    bench_migration
);
criterion_main!(benches);
