//! Resize rules: cluster-capacity-driven grow/shrink decisions.
//!
//! The paper's rules classify a *single host* (free/busy/overloaded); a
//! resize rule lifts the same shape — metric, operator, threshold — to the
//! *cluster* and, instead of choosing a migration destination, decides that
//! a malleable application should change size. The registry evaluates them
//! over the fraction of registered hosts in each state and, when one fires,
//! dispatches an `expand:`/`shrink:` reconfiguration through the same
//! command channel migration uses.

use crate::simple::RuleOp;
use ars_xmlwire::{XmlElement, XmlError};
use std::fmt;

/// Cluster-wide metric a resize rule reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeMetric {
    /// Fraction of registered hosts currently in the *free* state (0..=1).
    FreeFrac,
    /// Fraction of registered hosts currently *overloaded* (0..=1).
    OverloadedFrac,
}

impl ResizeMetric {
    /// Parse the wire form.
    pub fn parse(s: &str) -> Option<ResizeMetric> {
        match s.trim() {
            "freeFrac" => Some(ResizeMetric::FreeFrac),
            "overLdFrac" => Some(ResizeMetric::OverloadedFrac),
            _ => None,
        }
    }
}

impl fmt::Display for ResizeMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResizeMetric::FreeFrac => "freeFrac",
            ResizeMetric::OverloadedFrac => "overLdFrac",
        })
    }
}

/// What to do when the rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeAction {
    /// Grow the world by `step` ranks (capped at `max_ranks`).
    Expand,
    /// Shrink the world by `step` ranks (floored at `min_ranks`).
    Shrink,
}

impl ResizeAction {
    /// Parse the wire form.
    pub fn parse(s: &str) -> Option<ResizeAction> {
        match s.trim() {
            "expand" => Some(ResizeAction::Expand),
            "shrink" => Some(ResizeAction::Shrink),
            _ => None,
        }
    }
}

impl fmt::Display for ResizeAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResizeAction::Expand => "expand",
            ResizeAction::Shrink => "shrink",
        })
    }
}

/// One resize rule: `if <metric> <op> <threshold> then <action> by <step>`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResizeRule {
    /// Application the rule governs (matches the registered app name).
    pub app: String,
    /// Cluster metric the rule reads.
    pub metric: ResizeMetric,
    /// Comparison operator.
    pub op: RuleOp,
    /// Threshold the metric is compared against.
    pub threshold: f64,
    /// Action when the comparison holds.
    pub action: ResizeAction,
    /// How many ranks to add/remove per firing.
    pub step: u32,
    /// Never shrink below this many ranks.
    pub min_ranks: u32,
    /// Never grow beyond this many ranks.
    pub max_ranks: u32,
}

impl ResizeRule {
    /// The default pair for an application: grow while most of the cluster
    /// is free, shrink while a meaningful share is overloaded.
    pub fn default_pair(app: &str, min_ranks: u32, max_ranks: u32) -> Vec<ResizeRule> {
        vec![
            ResizeRule {
                app: app.to_string(),
                metric: ResizeMetric::FreeFrac,
                op: RuleOp::GreaterEq,
                threshold: 0.5,
                action: ResizeAction::Expand,
                step: 1,
                min_ranks,
                max_ranks,
            },
            ResizeRule {
                app: app.to_string(),
                metric: ResizeMetric::OverloadedFrac,
                op: RuleOp::GreaterEq,
                threshold: 0.25,
                action: ResizeAction::Shrink,
                step: 1,
                min_ranks,
                max_ranks,
            },
        ]
    }

    /// Evaluate against the current cluster capacity. Returns the target
    /// rank count `k'` when the rule fires *and* changes the size, `None`
    /// otherwise.
    pub fn decide(&self, free_frac: f64, overloaded_frac: f64, current: u32) -> Option<u32> {
        let value = match self.metric {
            ResizeMetric::FreeFrac => free_frac,
            ResizeMetric::OverloadedFrac => overloaded_frac,
        };
        if !self.op.apply(value, self.threshold) {
            return None;
        }
        // Strictly directional: if the world is already at (or past) the
        // bound, the rule stays quiet rather than "correcting" sideways.
        match self.action {
            ResizeAction::Expand => {
                let target = current.saturating_add(self.step).min(self.max_ranks);
                (target > current).then_some(target)
            }
            ResizeAction::Shrink => {
                let target = current.saturating_sub(self.step).max(self.min_ranks);
                (target < current && target >= 1).then_some(target)
            }
        }
    }

    /// Serialize to the wire XML form.
    pub fn to_xml(&self) -> XmlElement {
        XmlElement::new("resize-rule")
            .attr("app", &self.app)
            .field("metric", self.metric)
            .field("operator", self.op)
            .field("threshold", self.threshold)
            .field("action", self.action)
            .field("step", self.step)
            .field("minRanks", self.min_ranks)
            .field("maxRanks", self.max_ranks)
    }

    /// Parse from the wire XML form.
    pub fn from_xml(el: &XmlElement) -> Result<ResizeRule, XmlError> {
        if el.name != "resize-rule" {
            return Err(XmlError::UnexpectedRoot(el.name.clone()));
        }
        let app = el
            .get_attr("app")
            .ok_or_else(|| XmlError::MissingField("app".to_string()))?
            .to_string();
        let metric_text = el
            .field_text("metric")
            .ok_or_else(|| XmlError::MissingField("metric".to_string()))?;
        let metric = ResizeMetric::parse(&metric_text)
            .ok_or_else(|| XmlError::BadField("metric".to_string(), metric_text))?;
        let op_text = el
            .field_text("operator")
            .ok_or_else(|| XmlError::MissingField("operator".to_string()))?;
        let op = RuleOp::parse(&op_text)
            .ok_or_else(|| XmlError::BadField("operator".to_string(), op_text))?;
        let action_text = el
            .field_text("action")
            .ok_or_else(|| XmlError::MissingField("action".to_string()))?;
        let action = ResizeAction::parse(&action_text)
            .ok_or_else(|| XmlError::BadField("action".to_string(), action_text))?;
        Ok(ResizeRule {
            app,
            metric,
            op,
            threshold: el.field_parse("threshold")?,
            action,
            step: el.field_parse("step")?,
            min_ranks: el.field_parse("minRanks")?,
            max_ranks: el.field_parse("maxRanks")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pair_grows_on_free_and_shrinks_on_overload() {
        let rules = ResizeRule::default_pair("stencil", 2, 6);
        // Cluster mostly free: the expand rule fires, the shrink rule stays
        // quiet.
        assert_eq!(rules[0].decide(0.8, 0.0, 3), Some(4));
        assert_eq!(rules[1].decide(0.8, 0.0, 3), None);
        // Cluster under pressure: only the shrink rule fires.
        assert_eq!(rules[0].decide(0.1, 0.5, 3), None);
        assert_eq!(rules[1].decide(0.1, 0.5, 3), Some(2));
    }

    #[test]
    fn bounds_are_respected() {
        let rules = ResizeRule::default_pair("a", 2, 4);
        assert_eq!(rules[0].decide(1.0, 0.0, 4), None, "at max already");
        assert_eq!(rules[1].decide(0.0, 1.0, 2), None, "at min already");
        assert_eq!(rules[0].decide(1.0, 0.0, 3), Some(4));
        assert_eq!(rules[1].decide(0.0, 1.0, 3), Some(2));
    }

    #[test]
    fn step_larger_than_room_clamps() {
        let r = ResizeRule {
            step: 8,
            ..ResizeRule::default_pair("a", 1, 5)[0].clone()
        };
        assert_eq!(r.decide(1.0, 0.0, 2), Some(5));
    }

    #[test]
    fn never_targets_zero_ranks() {
        let r = ResizeRule {
            min_ranks: 0,
            step: 3,
            ..ResizeRule::default_pair("a", 0, 8)[1].clone()
        };
        assert_eq!(r.decide(0.0, 1.0, 2), None, "0-rank target suppressed");
    }

    #[test]
    fn xml_roundtrip_is_exact() {
        for rule in ResizeRule::default_pair("malleable_stencil", 2, 16) {
            let doc = rule.to_xml().to_document();
            let back = ResizeRule::from_xml(&ars_xmlwire::parse(&doc).unwrap()).unwrap();
            assert_eq!(back, rule);
        }
    }

    #[test]
    fn wrong_root_and_bad_fields_rejected() {
        assert!(ResizeRule::from_xml(&ars_xmlwire::parse("<rule/>").unwrap()).is_err());
        let doc = ResizeRule::default_pair("a", 1, 4)[0]
            .to_xml()
            .to_document()
            .replace("freeFrac", "bogus");
        assert!(ResizeRule::from_xml(&ars_xmlwire::parse(&doc).unwrap()).is_err());
    }
}
