//! # ars-faults — deterministic fault-injection schedules
//!
//! The paper's runtime is *autonomic*: soft-state registration survives
//! monitor loss, poll-point migration moves processes off failing hosts.
//! Exercising those recovery paths requires faults, and faults in a
//! deterministic DES must themselves be deterministic. This crate defines
//! the *plan* layer: a seeded description of what goes wrong and when.
//! Interpretation (killing processes, black-holing messages) lives in
//! `ars-sim`, which owns the machinery being faulted.
//!
//! Determinism contract:
//!
//! * A [`FaultPlan`] is pure data; two runs with the same kernel seed and
//!   the same plan produce bit-identical traces.
//! * Message-level faults draw from a **dedicated** RNG seeded from
//!   [`FaultPlan::seed`] — never from the kernel RNG — so enabling or
//!   reshaping a plan cannot perturb any fault-free random stream.
//! * A disabled plan ([`FaultPlan::is_enabled`] == false) installs nothing:
//!   no events, no RNG draws, no interception. Runs with faults disabled
//!   are byte-identical to a build without the fault layer.

use ars_simcore::{SimDuration, SimRng, SimTime};

/// Signal number used to ask a runtime daemon (the registry) to restart:
/// the process survives but drops all soft state, as if the OS process had
/// been killed and relaunched. Distinct from `MIGRATE_SIGNAL` (30) in
/// `ars-hpcm`.
pub const RESTART_SIGNAL: u32 = 31;

/// One kind of injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Power off a host: every resident process dies, in-flight transfers
    /// touching the host are torn down, and new spawns onto it fail until
    /// it recovers.
    HostCrash { host: u32 },
    /// Power the host back on (empty — crashed processes do not revive).
    HostRecover { host: u32 },
    /// Sever connectivity between every host in `a` and every host in `b`
    /// (both directions). Messages and new transfers across the cut are
    /// black-holed.
    PartitionStart { a: Vec<u32>, b: Vec<u32> },
    /// Heal *all* active partitions.
    PartitionEnd,
    /// Freeze a host's outbound messages for `duration` (a GC-pause /
    /// livelocked-daemon model): sends complete locally but deliveries are
    /// held until the stall ends, then flushed in order.
    MonitorStall { host: u32, duration: SimDuration },
    /// Deliver [`RESTART_SIGNAL`] to a process, asking it to drop its soft
    /// state (used to model a registry restart).
    ProcessRestart { pid: u64 },
    /// Crash one registry process by pid: it goes deaf *and* mute — every
    /// delivery to or from the pid is black-holed — without touching the
    /// host it shares with sibling registries. This is the explicit, safe
    /// way to target a single node of the registry tree; host-level faults
    /// cannot distinguish co-located registries (and loopback traffic never
    /// reaches the host fault path at all).
    RegistryCrash { pid: u64 },
    /// End a [`Fault::RegistryCrash`]: deliveries flow again and the pid
    /// receives [`RESTART_SIGNAL`], so the process comes back with empty
    /// soft state and rebuilds it through the `ReRegister` path, exactly
    /// like a freshly exec'd daemon.
    RegistryRecover { pid: u64 },
    /// Sever one edge of the registry tree: deliveries between the two pids
    /// (both directions) are black-holed while the rest of each process's
    /// connectivity stays intact. Models a parent↔child link partition.
    EdgePartition { a: u64, b: u64 },
    /// Heal a previously severed tree edge.
    EdgeHeal { a: u64, b: u64 },
}

/// A fault with its injection time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedFault {
    pub at: SimTime,
    pub fault: Fault,
}

/// Per-message fault probabilities, applied to every *cross-host* delivery
/// (loopback is reliable). Probabilities are cumulative and evaluated with
/// a single RNG draw per delivery: drop wins over duplicate wins over delay.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MessageFaults {
    /// Probability a delivery is silently dropped.
    pub drop: f64,
    /// Probability a delivery arrives twice.
    pub duplicate: f64,
    /// Probability a delivery is held for an extra `delay_by`.
    pub delay: f64,
    /// Extra latency applied to delayed deliveries.
    pub delay_by: SimDuration,
}

impl MessageFaults {
    /// True if any probability is set.
    pub fn any(&self) -> bool {
        self.drop > 0.0 || self.duplicate > 0.0 || self.delay > 0.0
    }
}

/// A complete, seeded fault schedule for one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Timed faults, injected at their `at` times (order within the vec is
    /// preserved for simultaneous faults).
    pub events: Vec<TimedFault>,
    /// Per-message fault probabilities.
    pub messages: MessageFaults,
    /// Seed for the dedicated message-fault RNG.
    pub seed: u64,
}

impl FaultPlan {
    /// The empty plan: nothing is intercepted, nothing is perturbed.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether this plan injects anything at all.
    pub fn is_enabled(&self) -> bool {
        !self.events.is_empty() || self.messages.any()
    }

    /// Builder: add one timed fault.
    pub fn at(mut self, at: SimTime, fault: Fault) -> Self {
        self.events.push(TimedFault { at, fault });
        self
    }

    /// Builder: set the per-message fault probabilities.
    pub fn with_messages(mut self, messages: MessageFaults) -> Self {
        self.messages = messages;
        self
    }

    /// Builder: set the message-fault RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generate a random-but-reproducible schedule from `seed`: the same
    /// seed and parameters always yield the same plan. Crash/stall targets
    /// and times are drawn from a private RNG forked off `seed`, so the
    /// plan is stable regardless of what else the caller does.
    pub fn seeded(seed: u64, p: &ScheduleParams) -> Self {
        let mut rng = SimRng::new(seed ^ 0x000F_A117_5EED);
        let mut events = Vec::new();
        let horizon = p.horizon.as_secs_f64();
        let n_hosts = (p.host_hi - p.host_lo).max(1);
        for _ in 0..p.crashes {
            let host = p.host_lo + (rng.below(n_hosts as u64) as u32);
            let at = SimTime::from_secs_f64(rng.range_f64(0.05 * horizon, 0.7 * horizon));
            events.push(TimedFault {
                at,
                fault: Fault::HostCrash { host },
            });
            events.push(TimedFault {
                at: at.saturating_add(p.recover_after),
                fault: Fault::HostRecover { host },
            });
        }
        for _ in 0..p.stalls {
            let host = p.host_lo + (rng.below(n_hosts as u64) as u32);
            let at = SimTime::from_secs_f64(rng.range_f64(0.05 * horizon, 0.8 * horizon));
            events.push(TimedFault {
                at,
                fault: Fault::MonitorStall {
                    host,
                    duration: p.stall_for,
                },
            });
        }
        // Registry faults target explicit pids, never a host range, so a
        // schedule can only hit registries the caller deliberately listed.
        // Draws happen after the host draws above: a plan with no registry
        // targets is bit-identical to one generated before this field existed.
        if !p.registry_pids.is_empty() {
            for _ in 0..p.registry_crashes {
                let pid = p.registry_pids[rng.below(p.registry_pids.len() as u64) as usize];
                let at = SimTime::from_secs_f64(rng.range_f64(0.05 * horizon, 0.6 * horizon));
                events.push(TimedFault {
                    at,
                    fault: Fault::RegistryCrash { pid },
                });
                events.push(TimedFault {
                    at: at.saturating_add(p.registry_recover_after),
                    fault: Fault::RegistryRecover { pid },
                });
            }
        }
        // Stable injection order for simultaneous events.
        events.sort_by_key(|e| e.at);
        FaultPlan {
            events,
            messages: p.messages,
            seed,
        }
    }
}

/// Parameters for [`FaultPlan::seeded`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleParams {
    /// Hosts eligible for crashes/stalls: `host_lo..host_hi` (half-open).
    /// Registries are *not* targeted through this range: co-located tree
    /// nodes share one host, so registry faults are pid-addressed instead —
    /// list the pids you mean in [`ScheduleParams::registry_pids`].
    pub host_lo: u32,
    pub host_hi: u32,
    /// Run horizon; injection times are drawn inside it.
    pub horizon: SimTime,
    /// Number of crash (+paired recover) events.
    pub crashes: u32,
    /// Downtime before each crashed host recovers.
    pub recover_after: SimDuration,
    /// Number of monitor-stall events.
    pub stalls: u32,
    /// Stall length.
    pub stall_for: SimDuration,
    /// Per-message fault probabilities.
    pub messages: MessageFaults,
    /// Registry pids eligible for [`Fault::RegistryCrash`] draws. Empty
    /// (the default) means no registry is ever targeted, and the generated
    /// schedule is bit-identical to a pre-registry-fault plan.
    pub registry_pids: Vec<u64>,
    /// Number of registry crash (+paired recover) events.
    pub registry_crashes: u32,
    /// Downtime before each crashed registry recovers.
    pub registry_recover_after: SimDuration,
}

impl Default for ScheduleParams {
    fn default() -> Self {
        ScheduleParams {
            host_lo: 1,
            host_hi: 2,
            horizon: SimTime::from_secs_f64(600.0),
            crashes: 0,
            recover_after: SimDuration::from_secs_f64(60.0),
            stalls: 0,
            stall_for: SimDuration::from_secs_f64(45.0),
            messages: MessageFaults::default(),
            registry_pids: Vec::new(),
            registry_crashes: 0,
            registry_recover_after: SimDuration::from_secs_f64(120.0),
        }
    }
}

/// Counters kept by the interpreter (`ars-sim`) while a plan runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultStats {
    pub crashes: u64,
    pub recoveries: u64,
    /// Processes killed by host crashes.
    pub procs_killed: u64,
    /// Spawns refused because the target host was down.
    pub spawns_failed: u64,
    /// Deliveries dropped by the random message-fault roll.
    pub msgs_dropped: u64,
    pub msgs_duplicated: u64,
    pub msgs_delayed: u64,
    /// Deliveries black-holed because the destination host was down or the
    /// link was partitioned.
    pub msgs_blackholed: u64,
    /// Deliveries held by a monitor stall.
    pub msgs_stalled: u64,
    /// RESTART_SIGNALs delivered.
    pub restarts: u64,
    /// Registry processes crashed (pid-level, deaf-and-mute).
    pub registry_crashes: u64,
    /// Registry processes recovered (and restarted with empty soft state).
    pub registry_recoveries: u64,
    /// Deliveries black-holed because a registry pid was crashed or the
    /// pid↔pid tree edge was severed.
    pub msgs_blackholed_registry: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn empty_plan_is_disabled() {
        assert!(!FaultPlan::none().is_enabled());
        assert!(!FaultPlan::default().is_enabled());
    }

    #[test]
    fn any_event_or_probability_enables_the_plan() {
        let p = FaultPlan::none().at(t(5.0), Fault::HostCrash { host: 1 });
        assert!(p.is_enabled());
        let p = FaultPlan::none().with_messages(MessageFaults {
            drop: 0.01,
            ..MessageFaults::default()
        });
        assert!(p.is_enabled());
    }

    #[test]
    fn seeded_schedules_are_reproducible() {
        let params = ScheduleParams {
            host_lo: 1,
            host_hi: 9,
            crashes: 3,
            stalls: 2,
            ..ScheduleParams::default()
        };
        let a = FaultPlan::seeded(42, &params);
        let b = FaultPlan::seeded(42, &params);
        assert_eq!(a, b, "same seed, same schedule");
        let c = FaultPlan::seeded(43, &params);
        assert_ne!(a, c, "different seeds diverge");
        assert_eq!(a.events.len(), 2 * 3 + 2); // crash+recover pairs + stalls
    }

    #[test]
    fn seeded_events_are_time_ordered_and_in_range() {
        let params = ScheduleParams {
            host_lo: 2,
            host_hi: 6,
            crashes: 4,
            stalls: 3,
            ..ScheduleParams::default()
        };
        let p = FaultPlan::seeded(7, &params);
        let mut last = SimTime::ZERO;
        for e in &p.events {
            assert!(e.at >= last, "events sorted");
            last = e.at;
            match &e.fault {
                Fault::HostCrash { host }
                | Fault::HostRecover { host }
                | Fault::MonitorStall { host, .. } => {
                    assert!((2..6).contains(host), "host {host} in range");
                }
                other => panic!("unexpected fault {other:?}"),
            }
        }
    }

    #[test]
    fn registry_targets_are_drawn_from_the_explicit_pid_set_only() {
        let params = ScheduleParams {
            registry_pids: vec![3, 7, 19],
            registry_crashes: 5,
            registry_recover_after: SimDuration::from_secs_f64(90.0),
            ..ScheduleParams::default()
        };
        let p = FaultPlan::seeded(11, &params);
        assert_eq!(p, FaultPlan::seeded(11, &params), "reproducible");
        let mut crashes = 0;
        let mut recoveries = 0;
        for e in &p.events {
            match &e.fault {
                Fault::RegistryCrash { pid } => {
                    crashes += 1;
                    assert!([3, 7, 19].contains(pid), "pid {pid} was listed");
                }
                Fault::RegistryRecover { pid } => {
                    recoveries += 1;
                    assert!([3, 7, 19].contains(pid), "pid {pid} was listed");
                }
                other => panic!("unexpected fault {other:?}"),
            }
        }
        assert_eq!((crashes, recoveries), (5, 5), "crash/recover pairs");
    }

    #[test]
    fn empty_registry_pid_set_leaves_seeded_schedules_unchanged() {
        // The registry draws come after the host draws and are skipped
        // entirely when no pids are listed, so extending the params struct
        // did not reshape any pre-existing schedule.
        let old_style = ScheduleParams {
            host_lo: 2,
            host_hi: 6,
            crashes: 2,
            stalls: 1,
            ..ScheduleParams::default()
        };
        let with_knob = ScheduleParams {
            registry_crashes: 4, // ignored: no pids listed
            ..old_style.clone()
        };
        assert_eq!(
            FaultPlan::seeded(42, &old_style),
            FaultPlan::seeded(42, &with_knob)
        );
    }
}
