//! Property-based tests for the rule engine.

use ars_rules::{
    ComplexRule, Expr, HostState, ResizeAction, ResizeMetric, ResizeRule, Rule, RuleOp, SimpleRule,
    StateCuts, StateScore,
};
use proptest::prelude::*;

/// Strategy producing arbitrary well-formed expressions.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0.0f64..10.0).prop_map(Expr::Num),
        (1u32..9).prop_map(Expr::Rule),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        (inner.clone(), inner).prop_flat_map(|(a, b)| {
            prop_oneof![
                Just(Expr::Mul(Box::new(a.clone()), Box::new(b.clone()))),
                Just(Expr::Add(Box::new(a.clone()), Box::new(b.clone()))),
                Just(Expr::Sub(Box::new(a.clone()), Box::new(b.clone()))),
                Just(Expr::And(Box::new(a.clone()), Box::new(b.clone()))),
                Just(Expr::Or(Box::new(a), Box::new(b))),
            ]
        })
    })
}

/// Identifier-ish strings that survive the XML wire untouched.
fn name_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z][a-zA-Z0-9_.-]{0,11}").unwrap()
}

fn op_strategy() -> impl Strategy<Value = RuleOp> {
    prop_oneof![
        Just(RuleOp::Less),
        Just(RuleOp::LessEq),
        Just(RuleOp::Greater),
        Just(RuleOp::GreaterEq),
    ]
}

fn simple_rule_strategy() -> impl Strategy<Value = SimpleRule> {
    (
        (1u32..99, name_strategy(), name_strategy(), name_strategy()),
        (
            op_strategy(),
            // `param: Some("")` would not round-trip (the parser reads an
            // empty param field as None) — the strategy never emits it.
            proptest::option::of(name_strategy()),
            -100.0f64..100.0,
            -100.0f64..100.0,
        ),
    )
        .prop_map(
            |((number, name, script, desc), (operator, param, busy, overloaded))| SimpleRule {
                number,
                name,
                script,
                desc,
                operator,
                param,
                busy,
                overloaded,
            },
        )
}

fn complex_rule_strategy() -> impl Strategy<Value = ComplexRule> {
    (
        (1u32..99, name_strategy(), name_strategy()),
        (
            expr_strategy(),
            proptest::collection::vec(1u32..9, 1..6),
            0.5f64..1.5,
            1.0f64..2.0,
        ),
    )
        .prop_map(
            |((number, name, desc), (expr, rule_order, busy_cut, overloaded_cut))| ComplexRule {
                number,
                name,
                desc,
                rule_order,
                expr,
                cuts: StateCuts {
                    busy_cut,
                    overloaded_cut,
                },
            },
        )
}

fn resize_rule_strategy() -> impl Strategy<Value = ResizeRule> {
    (
        (
            name_strategy(),
            prop_oneof![
                Just(ResizeMetric::FreeFrac),
                Just(ResizeMetric::OverloadedFrac)
            ],
            op_strategy(),
            0.0f64..1.0,
        ),
        (
            prop_oneof![Just(ResizeAction::Expand), Just(ResizeAction::Shrink)],
            1u32..8,
            1u32..4,
            4u32..32,
        ),
    )
        .prop_map(
            |((app, metric, op, threshold), (action, step, min_ranks, max_ranks))| ResizeRule {
                app,
                metric,
                op,
                threshold,
                action,
                step,
                min_ranks,
                max_ranks,
            },
        )
}

fn rule_strategy() -> impl Strategy<Value = Rule> {
    prop_oneof![
        simple_rule_strategy().prop_map(Rule::Simple),
        complex_rule_strategy().prop_map(Rule::Complex),
    ]
}

proptest! {
    /// Displayed expressions re-parse to the same tree (pretty-printer and
    /// parser agree).
    #[test]
    fn display_parse_roundtrip(e in expr_strategy()) {
        let printed = e.to_string();
        let back = Expr::parse(&printed).unwrap();
        prop_assert_eq!(back, e);
    }

    /// `&`/`|` are commutative in evaluation (min/max), for any rule scores.
    #[test]
    fn and_or_commute(
        a in expr_strategy(),
        b in expr_strategy(),
        scores in proptest::collection::vec(0.0f64..2.0, 9),
    ) {
        let lookup = |n: u32| scores.get(n as usize).copied();
        let ab = Expr::And(Box::new(a.clone()), Box::new(b.clone())).eval(&lookup);
        let ba = Expr::And(Box::new(b.clone()), Box::new(a.clone())).eval(&lookup);
        prop_assert_eq!(ab, ba);
        let ab = Expr::Or(Box::new(a.clone()), Box::new(b.clone())).eval(&lookup);
        let ba = Expr::Or(Box::new(b), Box::new(a)).eval(&lookup);
        prop_assert_eq!(ab, ba);
    }

    /// A conjunction never evaluates above either side; a disjunction never
    /// below (min/max laws).
    #[test]
    fn and_bounded_by_operands(
        a in expr_strategy(),
        b in expr_strategy(),
        scores in proptest::collection::vec(0.0f64..2.0, 9),
    ) {
        let lookup = |n: u32| scores.get(n as usize).copied();
        if let (Ok(va), Ok(vb)) = (a.eval(&lookup), b.eval(&lookup)) {
            let vand = Expr::And(Box::new(a.clone()), Box::new(b.clone()))
                .eval(&lookup)
                .unwrap();
            let vor = Expr::Or(Box::new(a), Box::new(b)).eval(&lookup).unwrap();
            prop_assert!(vand <= va && vand <= vb);
            prop_assert!(vor >= va && vor >= vb);
        }
    }

    /// Simple-rule evaluation is monotone in the metric for `<` and `>`:
    /// making the metric "worse" never makes the state milder.
    #[test]
    fn simple_rule_monotone(
        busy in -100.0f64..100.0,
        margin in 0.1f64..50.0,
        x in -200.0f64..200.0,
        dx in 0.0f64..50.0,
    ) {
        // Less-is-worse rule (like CPU idle): overloaded below busy-margin.
        let rule = SimpleRule {
            number: 1,
            name: "m".to_string(),
            script: "m.sh".to_string(),
            desc: String::new(),
            operator: RuleOp::Less,
            param: None,
            busy,
            overloaded: busy - margin,
        };
        let severity = |s: HostState| StateScore::from(s).0;
        prop_assert!(severity(rule.evaluate(x - dx)) >= severity(rule.evaluate(x)));

        let rule_gt = SimpleRule {
            operator: RuleOp::Greater,
            busy,
            overloaded: busy + margin,
            ..rule
        };
        prop_assert!(severity(rule_gt.evaluate(x + dx)) >= severity(rule_gt.evaluate(x)));
    }

    /// Cut classification is monotone in the score.
    #[test]
    fn cuts_monotone(score in 0.0f64..2.0, d in 0.0f64..2.0) {
        let cuts = StateCuts::default();
        let sev = |s: HostState| StateScore::from(s).0;
        let lo = cuts.classify(StateScore(score));
        let hi = cuts.classify(StateScore((score + d).min(2.0)));
        prop_assert!(sev(hi) >= sev(lo));
    }

    /// Any rule — simple or complex, with arbitrary expressions, explicit
    /// `rule_order`, params and cuts — round-trips through the XML wire
    /// form exactly.
    #[test]
    fn rule_xml_roundtrip_is_exact(rule in rule_strategy()) {
        let doc = rule.to_xml().to_document();
        let parsed = ars_xmlwire::parse(&doc)
            .map_err(|e| TestCaseError(format!("unparseable xml: {e}\n{doc}")))?;
        let back = Rule::from_xml(&parsed)
            .map_err(|e| TestCaseError(format!("rule rejected: {e}\n{doc}")))?;
        prop_assert_eq!(back, rule);
    }

    /// Resize rules round-trip through the XML wire form exactly.
    #[test]
    fn resize_rule_xml_roundtrip_is_exact(rule in resize_rule_strategy()) {
        let doc = rule.to_xml().to_document();
        let parsed = ars_xmlwire::parse(&doc)
            .map_err(|e| TestCaseError(format!("unparseable xml: {e}\n{doc}")))?;
        let back = ResizeRule::from_xml(&parsed)
            .map_err(|e| TestCaseError(format!("rule rejected: {e}\n{doc}")))?;
        prop_assert_eq!(back, rule);
    }

    /// A resize decision always lands inside `[min_ranks, max_ranks]` (or
    /// fires not at all), never returns the current size, and moves in the
    /// direction its action says.
    #[test]
    fn resize_decisions_bounded_and_directional(
        rule in resize_rule_strategy(),
        free in 0.0f64..1.0,
        over in 0.0f64..1.0,
        current in 1u32..40,
    ) {
        if let Some(target) = rule.decide(free, over, current) {
            prop_assert!(target != current);
            match rule.action {
                ResizeAction::Expand => {
                    prop_assert!(target > current && target <= rule.max_ranks);
                }
                ResizeAction::Shrink => {
                    prop_assert!(target < current && target >= rule.min_ranks.max(1));
                }
            }
        }
    }
}

#[test]
fn paper_weighted_percent_rule_roundtrips_through_xml() {
    // The Figure 4 complex rule verbatim: weighted-percent expression,
    // explicit evaluation order, both cuts.
    let rule = Rule::Complex(ComplexRule {
        number: 5,
        name: "decision".to_string(),
        desc: "overall decision rule".to_string(),
        rule_order: vec![4, 1, 3, 2],
        expr: Expr::parse("( 40% * r4 + 30% * r1 + 30% * r3 ) & r2").unwrap(),
        cuts: StateCuts {
            busy_cut: 0.8,
            overloaded_cut: 1.2,
        },
    });
    let doc = rule.to_xml().to_document();
    let back = Rule::from_xml(&ars_xmlwire::parse(&doc).unwrap()).unwrap();
    assert_eq!(back, rule);
    let Rule::Complex(c) = back else {
        unreachable!("serialized as complex")
    };
    assert_eq!(c.rule_order, vec![4, 1, 3, 2]);
}
