//! Ablation A7 — push vs pull registration (§3.2). The paper chose the
//! push/soft-state model; the pull model "leads to the registry/scheduler
//! having to make a query at runtime when a decision is expected, thus
//! slowing down the process" — but guarantees no steady-state heartbeat
//! traffic.

use ars_bench::ablations::push_pull;

fn main() {
    println!("A7 — push vs pull registration (4 monitored hosts)\n");
    println!(
        "{:>8} {:>22} {:>16}",
        "mode", "registry traffic B/s", "reaction (s)"
    );
    for (label, push) in [("push", true), ("pull", false)] {
        let o = push_pull(label, push, 7);
        println!(
            "{:>8} {:>22.1} {:>16}",
            o.label,
            o.registry_rx_bps,
            o.reaction_s.map_or("-".to_string(), |d| format!("{d:.1}")),
        );
    }
    println!("\nexpected shape: pull mode drops the steady heartbeat traffic by two orders");
    println!("of magnitude. The decision itself slows from ~2 ms to up to a monitor cycle");
    println!("(queries + replies), which disappears inside the minutes-scale detection");
    println!("latency here — the paper still prefers push for exactly that decision-path");
    println!("cost, plus the liveness information the heartbeats provide for free.");
}
