//! The *application schema* (§3.3).
//!
//! "The detailed application information, parameters, and resource
//! requirements are encapsulated in an application schema in a XML format
//! … application characteristics, which include data, communication, or
//! computing intensive; estimated communication data size; resources
//! requirement; and estimated execution time on workstation with certain
//! computing power. The application schema is initially provided by the
//! users and is updated according to the statistics of actual executions."

use crate::doc::{parse, XmlElement, XmlError};

/// Dominant resource characteristic of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppCharacteristic {
    /// Dominated by local data access; migrating it is rarely worthwhile.
    DataIntensive,
    /// Dominated by message traffic; destination link quality matters.
    CommIntensive,
    /// Dominated by CPU; destination load matters.
    ComputeIntensive,
}

impl AppCharacteristic {
    fn as_str(self) -> &'static str {
        match self {
            AppCharacteristic::DataIntensive => "data",
            AppCharacteristic::CommIntensive => "communication",
            AppCharacteristic::ComputeIntensive => "computing",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s.trim() {
            "data" => Some(AppCharacteristic::DataIntensive),
            "communication" => Some(AppCharacteristic::CommIntensive),
            "computing" => Some(AppCharacteristic::ComputeIntensive),
            _ => None,
        }
    }
}

/// Resources an application needs from a destination host.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceRequirements {
    /// Minimum free physical memory, kilobytes.
    pub mem_kb: u64,
    /// Minimum free disk, kilobytes.
    pub disk_kb: u64,
    /// Minimum relative CPU speed of the destination.
    pub min_cpu_speed: f64,
}

/// The application schema carried with every migration-enabled process.
#[derive(Debug, Clone, PartialEq)]
pub struct ApplicationSchema {
    /// Application name (matches the process-table entry).
    pub app: String,
    /// Dominant characteristic.
    pub characteristic: AppCharacteristic,
    /// Estimated total communication volume, bytes.
    pub est_comm_bytes: u64,
    /// Resource requirements on a destination.
    pub requirements: ResourceRequirements,
    /// Estimated execution time in seconds on the reference workstation
    /// (cpu_speed = 1.0).
    pub est_exec_time_s: f64,
    /// Number of completed executions folded into the estimate.
    pub history_runs: u32,
}

impl ApplicationSchema {
    /// A compute-intensive schema with the given name and time estimate.
    pub fn compute(app: impl Into<String>, est_exec_time_s: f64) -> Self {
        ApplicationSchema {
            app: app.into(),
            characteristic: AppCharacteristic::ComputeIntensive,
            est_comm_bytes: 0,
            requirements: ResourceRequirements::default(),
            est_exec_time_s,
            history_runs: 0,
        }
    }

    /// Fold the measured execution time of a completed run into the
    /// estimate ("updated according to the statistics of actual
    /// executions"): a running mean over all observed runs, seeded by the
    /// user-provided estimate.
    pub fn record_run(&mut self, measured_s: f64) {
        let n = self.history_runs as f64;
        self.est_exec_time_s = (self.est_exec_time_s * (n + 1.0) + measured_s) / (n + 2.0);
        self.history_runs += 1;
    }

    /// Serialize to the wire XML form.
    pub fn to_xml(&self) -> XmlElement {
        XmlElement::new("application-schema")
            .attr("app", &self.app)
            .field("characteristic", self.characteristic.as_str())
            .field("est-comm-bytes", self.est_comm_bytes)
            .child(
                XmlElement::new("requirements")
                    .field("mem-kb", self.requirements.mem_kb)
                    .field("disk-kb", self.requirements.disk_kb)
                    .field("min-cpu-speed", self.requirements.min_cpu_speed),
            )
            .field("est-exec-time-s", self.est_exec_time_s)
            .field("history-runs", self.history_runs)
    }

    /// Parse from the wire XML form.
    pub fn from_xml(el: &XmlElement) -> Result<Self, XmlError> {
        if el.name != "application-schema" {
            return Err(XmlError::UnexpectedRoot(el.name.clone()));
        }
        let app = el
            .get_attr("app")
            .ok_or_else(|| XmlError::MissingField("app".to_string()))?
            .to_string();
        let ch_text = el
            .field_text("characteristic")
            .ok_or_else(|| XmlError::MissingField("characteristic".to_string()))?;
        let characteristic = AppCharacteristic::from_str(&ch_text)
            .ok_or_else(|| XmlError::BadField("characteristic".to_string(), ch_text))?;
        let req = el
            .find("requirements")
            .ok_or_else(|| XmlError::MissingField("requirements".to_string()))?;
        Ok(ApplicationSchema {
            app,
            characteristic,
            est_comm_bytes: el.field_parse("est-comm-bytes")?,
            requirements: ResourceRequirements {
                mem_kb: req.field_parse("mem-kb")?,
                disk_kb: req.field_parse("disk-kb")?,
                min_cpu_speed: req.field_parse("min-cpu-speed")?,
            },
            est_exec_time_s: el.field_parse("est-exec-time-s")?,
            history_runs: el.field_parse("history-runs")?,
        })
    }

    /// Parse from a serialized document string.
    pub fn from_document(doc: &str) -> Result<Self, XmlError> {
        Self::from_xml(&parse(doc)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ApplicationSchema {
        ApplicationSchema {
            app: "test_tree".to_string(),
            characteristic: AppCharacteristic::ComputeIntensive,
            est_comm_bytes: 1_048_576,
            requirements: ResourceRequirements {
                mem_kb: 32_768,
                disk_kb: 1_024,
                min_cpu_speed: 0.5,
            },
            est_exec_time_s: 600.0,
            history_runs: 3,
        }
    }

    #[test]
    fn xml_roundtrip() {
        let s = sample();
        let doc = s.to_xml().to_document();
        let back = ApplicationSchema::from_document(&doc).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn characteristics_roundtrip() {
        for c in [
            AppCharacteristic::DataIntensive,
            AppCharacteristic::CommIntensive,
            AppCharacteristic::ComputeIntensive,
        ] {
            assert_eq!(AppCharacteristic::from_str(c.as_str()), Some(c));
        }
        assert_eq!(AppCharacteristic::from_str("other"), None);
    }

    #[test]
    fn record_run_converges_to_measurements() {
        let mut s = ApplicationSchema::compute("x", 1000.0);
        for _ in 0..200 {
            s.record_run(500.0);
        }
        assert!(
            (s.est_exec_time_s - 500.0).abs() < 10.0,
            "{}",
            s.est_exec_time_s
        );
        assert_eq!(s.history_runs, 200);
    }

    #[test]
    fn record_run_single_observation_moves_estimate() {
        let mut s = ApplicationSchema::compute("x", 1000.0);
        s.record_run(400.0);
        assert!(s.est_exec_time_s < 1000.0 && s.est_exec_time_s > 400.0);
    }

    #[test]
    fn rejects_wrong_root() {
        let e = ApplicationSchema::from_document("<nope/>").unwrap_err();
        assert!(matches!(e, XmlError::UnexpectedRoot(_)));
    }

    #[test]
    fn rejects_bad_characteristic() {
        let doc = sample()
            .to_xml()
            .to_document()
            .replace("computing", "quantum");
        let e = ApplicationSchema::from_document(&doc).unwrap_err();
        assert!(matches!(e, XmlError::BadField(_, _)));
    }
}
