//! Figure 8 — system efficiency: communication during the migration. A
//! burst appears on the source's send side and the destination's receive
//! side while the state transfers; restoration starts almost immediately
//! and the process resumes before the transfer completes.

use ars_bench::efficiency;
use ars_bench::print_series;

fn main() {
    let run = efficiency::run(42);
    let mut tx = run.tx_src.clone();
    let mut rx = run.rx_dst.clone();
    tx.set_name("tx.source");
    rx.set_name("rx.dest");
    print_series(
        "Figure 8 — network rates across the migration, KB/s (10 s samples)",
        &[&tx, &rx],
    );

    let m = &run.migration;
    let resumed = m.resumed_at.unwrap();
    let lazy = m.lazy_done_at.unwrap();
    println!("\nstate transfer:");
    println!(
        "  eager {} B + lazy {} B over a 12.5 MB/s NIC",
        m.eager_bytes, m.lazy_bytes
    );
    println!(
        "  poll-point t={:.2}; resumed t={:.2}; transfer complete t={:.2}",
        m.pollpoint_at.as_secs_f64(),
        resumed.as_secs_f64(),
        lazy.as_secs_f64()
    );
    println!(
        "  resumed before the migration ended: {} (paper: \"the process resumes\n  execution at the destination before the migration ends\")",
        resumed < lazy
    );
}
