//! Checkpoint-decode robustness for the workload apps: `restore` on a
//! truncated or bit-flipped checkpoint must return `Err` (or a valid
//! re-decode for flips in don't-care bytes) — never panic. The wire layer
//! catches corruption with a checksum before `restore` runs; this is the
//! defense-in-depth behind it.

use ars_apps::{Stencil, StencilConfig, TestTree, TestTreeConfig};
use ars_hpcm::MigratableApp;
use ars_mpisim::Mpi;

fn assert_restore_never_panics<F: Fn(&[u8])>(eager: &[u8], restore: F) {
    // Every strict truncation.
    for n in 0..eager.len() {
        restore(&eager[..n]);
    }
    // Every single-bit flip.
    for i in 0..eager.len() * 8 {
        let mut bad = eager.to_vec();
        bad[i / 8] ^= 1 << (i % 8);
        restore(&bad);
    }
}

#[test]
fn test_tree_restore_survives_corrupt_checkpoints() {
    let app = TestTree::new(TestTreeConfig::small());
    let saved = app.save();
    assert!(TestTree::restore(&saved.eager, None).is_ok());
    assert_restore_never_panics(&saved.eager, |bytes| {
        let _ = TestTree::restore(bytes, None);
    });
}

#[test]
fn stencil_restore_survives_corrupt_checkpoints() {
    let mpi = Mpi::new();
    let comm = mpi.create_comm(vec![]);
    let app = Stencil::new(StencilConfig::small(), mpi.clone(), comm);
    let saved = app.save();
    assert!(Stencil::restore(&saved.eager, Some(&mpi)).is_ok());
    assert_restore_never_panics(&saved.eager, |bytes| {
        let _ = Stencil::restore(bytes, Some(&mpi));
    });
}

#[test]
fn truncations_that_cut_required_fields_error() {
    // The first bytes of every checkpoint hold required fields; cutting
    // into them must yield a typed error, not a default-valued app.
    let saved = TestTree::new(TestTreeConfig::small()).save();
    for n in 0..8.min(saved.eager.len()) {
        assert!(TestTree::restore(&saved.eager[..n], None).is_err());
    }
}
